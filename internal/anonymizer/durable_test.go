package anonymizer

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/reversecloak/reversecloak/internal/accessctl"
	"github.com/reversecloak/reversecloak/internal/cloak"
	"github.com/reversecloak/reversecloak/internal/keys"
	"github.com/reversecloak/reversecloak/internal/roadnet"
)

// fakeRegistration builds a structurally valid registration without
// running the cloak engine (for store mechanics tests that never
// de-anonymize).
func fakeRegistration(t testing.TB, levels int) *Registration {
	t.Helper()
	ks, err := keys.AutoGenerate(levels)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := accessctl.NewPolicy(levels, levels)
	if err != nil {
		t.Fatal(err)
	}
	region := &cloak.CloakedRegion{
		Algorithm: cloak.RGE,
		Segments:  []roadnet.SegmentID{1, 2, 3, 4, 5},
		Levels:    make([]cloak.LevelMeta, levels),
	}
	steps := len(region.Segments) - 1
	for i := range region.Levels {
		n := steps / levels
		if i == 0 {
			n = steps - (levels-1)*(steps/levels)
		}
		region.Levels[i] = cloak.LevelMeta{Steps: n}
	}
	return NewRegistration(region, ks, policy)
}

// testMasterKeyring builds an in-memory keyring over deterministic
// per-epoch secrets. The last listed epoch is active; epochs defaults to
// {1} when empty.
func testMasterKeyring(tb testing.TB, epochs ...uint32) *keys.Keyring {
	tb.Helper()
	if len(epochs) == 0 {
		epochs = []uint32{1}
	}
	secrets := make(map[uint32][]byte, len(epochs))
	for _, e := range epochs {
		secrets[e] = []byte(fmt.Sprintf("anonymizer-test-master-secret-%08d", e))
	}
	kr, err := keys.NewKeyring(epochs[len(epochs)-1], secrets)
	if err != nil {
		tb.Fatal(err)
	}
	return kr
}

// fakeDerivedRegistration is fakeRegistration's schema-v3 twin: the same
// structurally valid region, but keyed through a (epoch, id, levels)
// reference into a deterministic test keyring instead of stored material.
func fakeDerivedRegistration(tb testing.TB, levels int) *Registration {
	tb.Helper()
	kr := testMasterKeyring(tb)
	stored := fakeRegistration(tb, levels)
	return NewDerivedRegistration(
		stored.region, kr, kr.ActiveEpoch(), "r-derived", levels, stored.policy)
}

// fuzzKeyring is the keyring the fuzz harness decodes derived-key records
// against: it holds epoch 1 (matching fakeDerivedRegistration and the
// hybrid seed) and nothing else, so epoch 999 stays unknown.
func fuzzKeyring(tb testing.TB) *keys.Keyring {
	return testMasterKeyring(tb, 1)
}

// openDurable opens a durable store and registers its cleanup.
func openDurable(t *testing.T, dir string, opts ...DurabilityOption) *DurableStore {
	t.Helper()
	st, err := OpenDurableStore(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	return st
}

// TestDurableStoreCrashRecovery is the headline durability test: a store
// under concurrent registration load is abandoned without Close (the
// crash), reopened, and every acknowledged registration must come back
// and de-anonymize byte-identically to the original.
func TestDurableStoreCrashRecovery(t *testing.T) {
	g, density := testGrid(t)
	engine, err := cloak.NewEngine(g, density, cloak.Options{Algorithm: cloak.RGE})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// FsyncAlways: every acked registration must survive the crash.
	// A small snapshot threshold exercises compaction mid-load too.
	st, err := OpenDurableStore(dir,
		WithFsyncPolicy(FsyncAlways), WithDurableShards(4), WithSnapshotEvery(8))
	if err != nil {
		t.Fatal(err)
	}

	type acked struct {
		regionJSON []byte
		keys       [][]byte
		user       roadnet.SegmentID
	}
	var (
		mu   sync.Mutex
		regs = make(map[string]acked)
	)
	const goroutines, perG = 4, 6
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				user := roadnet.SegmentID(10 + w*perG + i)
				ks, err := keys.AutoGenerate(2)
				if err != nil {
					panic(err)
				}
				region, _, err := engine.Anonymize(cloak.Request{
					UserSegment: user, Profile: testProfile(), Keys: ks.All(),
				})
				if err != nil {
					continue // infeasible cloak: nothing acked, nothing owed
				}
				policy, err := accessctl.NewPolicy(2, 2)
				if err != nil {
					panic(err)
				}
				id, err := st.Register(NewRegistration(region, ks, policy))
				if err != nil {
					panic(fmt.Sprintf("register: %v", err))
				}
				raw, err := json.Marshal(region)
				if err != nil {
					panic(err)
				}
				mu.Lock()
				regs[id] = acked{regionJSON: raw, keys: ks.All(), user: user}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if len(regs) == 0 {
		t.Fatal("no registrations succeeded; fixture too small")
	}

	// Crash: the first store is abandoned without Close. Reopen the
	// directory as a fresh process would.
	st2 := openDurable(t, dir)
	if got := st2.Len(); got != len(regs) {
		t.Fatalf("recovered %d registrations, acked %d", got, len(regs))
	}
	for id, want := range regs {
		reg, err := st2.Lookup(id)
		if err != nil {
			t.Fatalf("Lookup(%q) after recovery: %v", id, err)
		}
		raw, err := json.Marshal(reg.Region())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, want.regionJSON) {
			t.Fatalf("region %q not byte-identical after recovery", id)
		}
		grant := map[int][]byte{1: want.keys[0], 2: want.keys[1]}
		l0, err := engine.Deanonymize(reg.Region(), grant, 0)
		if err != nil {
			t.Fatalf("deanonymize %q after recovery: %v", id, err)
		}
		if len(l0.Segments) != 1 || l0.Segments[0] != want.user {
			t.Fatalf("region %q deanonymized to %v, want [%d]", id, l0.Segments, want.user)
		}
	}
}

// lastLogSegment returns dir's last non-empty unified-log segment — the
// only file a crash can leave a torn tail in.
func lastLogSegment(t *testing.T, dir string) string {
	t.Helper()
	names, _, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(names) - 1; i >= 0; i-- {
		p := filepath.Join(dir, names[i])
		info, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() > 0 {
			return p
		}
	}
	t.Fatal("no non-empty log segment")
	return ""
}

// logBytes sums dir's unified-log segment sizes.
func logBytes(t *testing.T, dir string) int64 {
	t.Helper()
	names, _, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, name := range names {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}

// TestDurableStoreToleratesTornTail cuts the log mid-record: recovery
// must drop the torn record, keep everything before it, and keep the
// store usable.
func TestDurableStoreToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDurableStore(dir,
		WithFsyncPolicy(FsyncAlways), WithDurableShards(1), WithSnapshotEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 10; i++ {
		id, err := st.Register(fakeRegistration(t, 2))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	walPath := lastLogSegment(t, dir)
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record: chop 3 bytes off the file.
	if err := os.Truncate(walPath, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	st2 := openDurable(t, dir)
	if got := st2.Len(); got != 9 {
		t.Fatalf("recovered %d registrations after torn tail, want 9", got)
	}
	if st2.Recovery().TruncatedBytes == 0 {
		t.Error("recovery did not report truncated bytes")
	}
	for _, id := range ids[:9] {
		if _, err := st2.Lookup(id); err != nil {
			t.Errorf("Lookup(%q) after torn-tail recovery: %v", id, err)
		}
	}
	if _, err := st2.Lookup(ids[9]); !errors.Is(err, ErrUnknownRegion) {
		t.Errorf("torn registration resolved: err = %v, want ErrUnknownRegion", err)
	}
	// The truncated log must be cleanly appendable again.
	id, err := st2.Register(fakeRegistration(t, 2))
	if err != nil {
		t.Fatalf("register after torn-tail recovery: %v", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3 := openDurable(t, dir)
	if _, err := st3.Lookup(id); err != nil {
		t.Errorf("post-recovery registration lost on reopen: %v", err)
	}
	if got := st3.Len(); got != 10 {
		t.Errorf("Len = %d after reopen, want 10", got)
	}
}

// TestDurableStoreGarbageTail appends random bytes after a clean close:
// everything real must survive, the garbage is dropped.
func TestDurableStoreGarbageTail(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDurableStore(dir, WithDurableShards(1), WithSnapshotEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := st.Register(fakeRegistration(t, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(lastLogSegment(t, dir), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openDurable(t, dir)
	if got := st2.Len(); got != 5 {
		t.Errorf("recovered %d registrations, want 5", got)
	}
}

// TestDurableStoreReplaysTrustAndDeregister checks that the full mutation
// lifecycle — not just registrations — survives a restart, and that the
// ID allocator never reuses an ID that was ever handed out.
func TestDurableStoreReplaysTrustAndDeregister(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDurableStore(dir, WithDurableShards(2))
	if err != nil {
		t.Fatal(err)
	}
	id1, err := st.Register(fakeRegistration(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := st.Register(fakeRegistration(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetTrust(id1, "alice", 0); err != nil {
		t.Fatal(err)
	}
	if err := st.SetTrust(id1, "bob", 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Deregister(id2); err != nil {
		t.Fatal(err)
	}
	if err := st.SetTrust(id2, "eve", 0); !errors.Is(err, ErrUnknownRegion) {
		t.Errorf("SetTrust on deregistered id: err = %v, want ErrUnknownRegion", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openDurable(t, dir)
	if got := st2.Len(); got != 1 {
		t.Fatalf("Len = %d after recovery, want 1", got)
	}
	reg, err := st2.Lookup(id1)
	if err != nil {
		t.Fatal(err)
	}
	for requester, want := range map[string]int{"alice": 0, "bob": 1} {
		if lv, err := reg.policy.LevelFor(requester); err != nil || lv != want {
			t.Errorf("recovered LevelFor(%q) = %d, %v; want %d", requester, lv, err, want)
		}
	}
	if _, err := st2.Lookup(id2); !errors.Is(err, ErrUnknownRegion) {
		t.Errorf("deregistered id resolved after recovery: %v", err)
	}
	stats := st2.Recovery()
	if stats.TrustUpdates != 2 || stats.Deregistrations != 1 {
		t.Errorf("recovery stats = %+v, want 2 trust updates and 1 deregistration", stats)
	}
	// Fresh IDs must not collide with anything ever issued — including
	// the deregistered id2.
	id3, err := st2.Register(fakeRegistration(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if id3 == id1 || id3 == id2 {
		t.Errorf("recovered store reissued id %q", id3)
	}
}

// TestDurableStoreSnapshotCompaction forces frequent snapshots and checks
// the WAL actually shrinks while the state stays complete.
func TestDurableStoreSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDurableStore(dir, WithDurableShards(1), WithSnapshotEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 20; i++ {
		id, err := st.Register(fakeRegistration(t, 1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if st.Snapshots() == 0 {
		t.Fatal("no compaction after 20 registrations with threshold 4")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// The log retains at most the records since the last snapshot (reclaim
	// drops snapshot-covered segments); with a threshold of 4 it must be
	// far smaller than 20 full records.
	snap, err := os.Stat(filepath.Join(dir, "shard-0000.snap"))
	if err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}
	if wal := logBytes(t, dir); wal >= snap.Size() {
		t.Errorf("log (%d bytes) not compacted below snapshot (%d bytes)", wal, snap.Size())
	}
	st2 := openDurable(t, dir)
	if got := st2.Len(); got != 20 {
		t.Fatalf("recovered %d registrations, want 20", got)
	}
	for _, id := range ids {
		if _, err := st2.Lookup(id); err != nil {
			t.Errorf("Lookup(%q) after compacted recovery: %v", id, err)
		}
	}
}

// TestDurableStoreConcurrentMixed hammers a durable store with mixed
// mutations under -race, closes it cleanly and verifies the reopened
// state matches the survivors exactly.
func TestDurableStoreConcurrentMixed(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDurableStore(dir,
		WithDurableShards(4), WithSnapshotEvery(16),
		WithFsyncEvery(5*time.Millisecond), WithSnapshotInterval(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 8, 40
	var (
		mu        sync.Mutex
		live      = make(map[string]bool)
		deregged  = make(map[string]bool)
		wg        sync.WaitGroup
		protoRegs [goroutines]*Registration
	)
	for w := range protoRegs {
		protoRegs[w] = fakeRegistration(t, 2)
	}
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id, err := st.Register(protoRegs[w])
				if err != nil {
					panic(err)
				}
				if err := st.SetTrust(id, "reader", 1); err != nil {
					panic(err)
				}
				if i%3 == 0 {
					if err := st.Deregister(id); err != nil {
						panic(err)
					}
					mu.Lock()
					deregged[id] = true
					mu.Unlock()
					continue
				}
				if _, err := st.Lookup(id); err != nil {
					panic(err)
				}
				mu.Lock()
				live[id] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openDurable(t, dir)
	if got := st2.Len(); got != len(live) {
		t.Fatalf("recovered %d registrations, want %d", got, len(live))
	}
	for id := range live {
		reg, err := st2.Lookup(id)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", id, err)
		}
		if lv, err := reg.policy.LevelFor("reader"); err != nil || lv != 1 {
			t.Fatalf("LevelFor(reader) on %q = %d, %v; want 1", id, lv, err)
		}
	}
	for id := range deregged {
		if _, err := st2.Lookup(id); !errors.Is(err, ErrUnknownRegion) {
			t.Fatalf("deregistered %q resolved after recovery: %v", id, err)
		}
	}
}

// TestDurableStoreClosedErrors pins the post-Close behavior.
func TestDurableStoreClosedErrors(t *testing.T) {
	st, err := OpenDurableStore(t.TempDir(), WithDurableShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Register(fakeRegistration(t, 1)); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("Register after Close: %v, want ErrStoreClosed", err)
	}
	if err := st.Deregister("r1"); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("Deregister after Close: %v, want ErrStoreClosed", err)
	}
	if err := st.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestServerDurabilityEndToEnd runs the whole service against a durable
// store, restarts it, and checks regions, trust and deregistrations all
// survived — through the public client API only.
func TestServerDurabilityEndToEnd(t *testing.T) {
	dir := t.TempDir()
	g, density := testGrid(t)

	srv1 := newTestServer(t, g, density, WithDurability(dir, WithFsyncPolicy(FsyncAlways)))
	addr1 := startTestServer(t, srv1)
	c1 := dial(t, addr1)

	idKeep, regionKeep, err := c1.Anonymize(42, testProfile(), "RGE")
	if err != nil {
		t.Fatal(err)
	}
	idDrop, _, err := c1.Anonymize(55, testProfile(), "RGE")
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.SetTrust(idKeep, "doctor", 0); err != nil {
		t.Fatal(err)
	}
	if err := c1.Deregister(idDrop); err != nil {
		t.Fatal(err)
	}
	wantKeep, err := json.Marshal(regionKeep)
	if err != nil {
		t.Fatal(err)
	}
	reduced1, lv1, err := c1.Reduce(idKeep, "doctor", 0)
	if err != nil {
		t.Fatal(err)
	}
	wantReduced, err := json.Marshal(reduced1)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2 := newTestServer(t, g, density, WithDurability(dir))
	addr2 := startTestServer(t, srv2)
	c2 := dial(t, addr2)

	got, _, err := c2.GetRegion(idKeep)
	if err != nil {
		t.Fatalf("GetRegion after restart: %v", err)
	}
	raw, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, wantKeep) {
		t.Error("region not byte-identical after restart")
	}
	reduced2, lv2, err := c2.Reduce(idKeep, "doctor", 0)
	if err != nil {
		t.Fatalf("Reduce after restart: %v", err)
	}
	raw2, err := json.Marshal(reduced2)
	if err != nil {
		t.Fatal(err)
	}
	if lv1 != lv2 || !bytes.Equal(raw2, wantReduced) {
		t.Error("server-side reduction not byte-identical after restart")
	}
	if _, _, err := c2.GetRegion(idDrop); err == nil {
		t.Error("deregistered region resolved after restart")
	}
}
