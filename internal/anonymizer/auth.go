package anonymizer

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/reversecloak/reversecloak/internal/anonymizer/tenant"
)

// This file is the server's trust boundary: the auth wire op that stamps
// a connection's principal, the capability gate every request passes
// through, and the quota preflight the connection pipeline runs before a
// request reaches the worker pool. With no tenant registry configured
// (the default) all of it is inert — a nil check on the hot path — so
// single-tenant deployments and the existing test suites are unaffected.

// Errors of the trust boundary. Each has a machine-readable wire code
// (Response.Code) so clients can distinguish them without parsing
// message strings.
var (
	// ErrAuthRequired reports a request on a connection that has not
	// authenticated while the server requires it.
	ErrAuthRequired = errors.New("anonymizer: authentication required")
	// ErrAuthFailed reports a rejected auth attempt (unknown tenant or
	// bad token — not distinguished) or a principal revoked mid-session.
	ErrAuthFailed = errors.New("anonymizer: authentication failed")
	// ErrDenied reports an operation outside the tenant's capability
	// grant.
	ErrDenied = errors.New("anonymizer: permission denied")
	// ErrThrottled reports a request rejected by the tenant's rate
	// limit.
	ErrThrottled = errors.New("anonymizer: rate limited")
)

// The wire error codes (Response.Code).
const (
	CodeAuthRequired = "auth_required"
	CodeAuthFailed   = "auth_failed"
	CodeDenied       = "denied"
	CodeThrottled    = "throttled"
)

// failCode wraps an error into a response carrying its machine-readable
// code.
func failCode(code string, err error) *Response {
	resp := fail(err)
	resp.Code = code
	return resp
}

// principal is the authenticated identity stamped on a connection. Only
// the NAME is pinned: every operation re-resolves it against the current
// tenant table, so a reload that revokes the tenant cuts off in-flight
// connections too.
type principal struct {
	name string
}

// connCtx is the per-connection state threaded through the pipeline.
type connCtx struct {
	principal atomic.Pointer[principal]
}

// tenantFor resolves the connection's current tenant grant, or the
// rejection to send instead. With no registry configured it returns
// (nil, nil): everything is allowed.
func (s *Server) tenantFor(cc *connCtx) (*tenant.Tenant, *Response) {
	reg := s.cfg.tenants
	if reg == nil {
		return nil, nil
	}
	p := cc.principal.Load()
	if p == nil {
		return nil, failCode(CodeAuthRequired,
			fmt.Errorf("%w: issue an auth request first", ErrAuthRequired))
	}
	t := reg.Lookup(p.name)
	if t == nil {
		// Revoked since authentication: the connection's credential died
		// with the reload that removed the tenant.
		return nil, failCode(CodeAuthFailed,
			fmt.Errorf("%w: tenant %q has been revoked", ErrAuthFailed, p.name))
	}
	return t, nil
}

// opCapability maps an operation to the capability it requires. The
// empty capability means any authenticated principal may call it.
func opCapability(op Op) (tenant.Capability, bool) {
	switch op {
	case OpAnonymize, OpAnonymizeBatch, OpTouch, OpSetTrust:
		return tenant.CapAnonymize, true
	case OpReduce, OpReduceBatch, OpRequestKeys:
		return tenant.CapReduce, true
	case OpDeregister:
		return tenant.CapDeregister, true
	case OpBackup, OpReplSubscribe, OpReplFrames, OpReplAck, OpReplStatus, OpReplPromote:
		return tenant.CapOperator, true
	case OpGetRegion:
		return "", true // the published region is the LBS provider's view
	default:
		return "", false
	}
}

// opClass maps an operation to its rate-limit weight class.
func opClass(op Op) tenant.Class {
	switch op {
	case OpAnonymize, OpAnonymizeBatch, OpSetTrust, OpDeregister, OpTouch:
		return tenant.ClassWrite
	case OpReduce, OpReduceBatch:
		return tenant.ClassReduce
	case OpBackup, OpReplSubscribe, OpReplFrames, OpReplAck, OpReplPromote:
		return tenant.ClassOperator
	default:
		return tenant.ClassRead
	}
}

// authorize is the capability gate: it runs inside dispatch for every
// operation except ping and auth, which any connection may issue (the
// liveness probe and the door itself). It enforces the tenant's
// capability set and, for disclosure ops, the reduce floor — the
// server-side rendering of the paper's per-requester trust levels.
func (s *Server) authorize(cc *connCtx, req *Request) *Response {
	if s.cfg.tenants == nil || req.Op == OpPing || req.Op == OpAuth {
		return nil
	}
	t, rejection := s.tenantFor(cc)
	if rejection != nil {
		s.metrics.authRejects.Add(1)
		return rejection
	}
	need, known := opCapability(req.Op)
	if !known {
		return nil // unknown op: let dispatch report ErrBadOp
	}
	deny := func(err error) *Response {
		s.cfg.tenants.Usage(t.Name).Denied()
		s.metrics.denied.Add(1)
		return failCode(CodeDenied, err)
	}
	if need != "" && !t.Has(need) {
		return deny(fmt.Errorf("%w: tenant %q lacks the %q capability (op %q)",
			ErrDenied, t.Name, need, req.Op))
	}
	if t.ReduceFloor > 0 {
		switch req.Op {
		case OpReduce:
			if req.ToLevel < t.ReduceFloor {
				return deny(reduceFloorErr(t, req.ToLevel))
			}
		case OpReduceBatch:
			for i := range req.Batch {
				if req.Batch[i].ToLevel < t.ReduceFloor {
					return deny(fmt.Errorf("batch item %d: %w",
						i, reduceFloorErr(t, req.Batch[i].ToLevel)))
				}
			}
		case OpRequestKeys:
			// Raw keys would let the holder peel arbitrarily far
			// client-side, making the floor unenforceable.
			return deny(fmt.Errorf("%w: tenant %q is capped at reduce level %d and may not fetch raw keys",
				ErrDenied, t.Name, t.ReduceFloor))
		}
	}
	return nil
}

// reduceFloorErr names a reduce-floor violation. Level 0 on the wire
// means "as fine as entitled", which a floored tenant may not request
// either: it must name an explicit target at or above its floor.
func reduceFloorErr(t *tenant.Tenant, toLevel int) error {
	return fmt.Errorf("%w: tenant %q may not reduce below level %d (requested %d)",
		ErrDenied, t.Name, t.ReduceFloor, toLevel)
}

// handleAuth authenticates the connection as a tenant. It runs inline in
// the connection's reader (not on the worker pool), so every request
// decoded after it — pipelined or not — observes the stamped principal.
// Re-authenticating switches the connection's principal.
func (s *Server) handleAuth(cc *connCtx, req *Request) *Response {
	reg := s.cfg.tenants
	if reg == nil {
		return fail(fmt.Errorf("%w: authentication is not enabled on this server", ErrBadOp))
	}
	t, err := reg.Authenticate(req.Tenant, req.Token)
	if err != nil {
		s.metrics.authFailures.Add(1)
		return failCode(CodeAuthFailed, fmt.Errorf("%w: bad tenant or token", ErrAuthFailed))
	}
	cc.principal.Store(&principal{name: t.Name})
	resp := newResp(true)
	resp.Tenant = t.Name
	resp.Caps = t.CapList()
	return resp
}

// preflight is the pipeline's cheap shedding point: it charges the
// request against the tenant's token bucket BEFORE the request is handed
// to the worker pool, so an over-quota client costs one JSON decode and
// an atomic check, not a cloak computation. It also accounts request
// bytes and executed ops to the tenant. A nil return means proceed; a
// response means reply with it and skip the workers.
//
// Unauthenticated requests pass through un-throttled: the gate in
// authorize rejects them anyway (when auth is on), and ping/auth must
// stay reachable to everyone.
func (s *Server) preflight(cc *connCtx, req *Request, reqBytes int64) *Response {
	reg := s.cfg.tenants
	if reg == nil {
		return nil
	}
	p := cc.principal.Load()
	if p == nil {
		return nil
	}
	t := reg.Lookup(p.name)
	if t == nil {
		return nil // authorize reports the revocation with its proper code
	}
	usage := reg.Usage(t.Name)
	usage.Bytes(reqBytes)
	if req.Op == OpPing || req.Op == OpAuth {
		return nil // liveness and the door are never charged
	}
	items := int64(1)
	if len(req.Batch) > 0 {
		items = int64(len(req.Batch))
	}
	cost := t.Weight(opClass(req.Op)) * float64(items)
	if !reg.Allow(t, cost) {
		usage.Throttled()
		s.metrics.throttled.Add(1)
		return failCode(CodeThrottled,
			fmt.Errorf("%w: tenant %q exceeded its rate budget (retry later)", ErrThrottled, t.Name))
	}
	usage.Op(items)
	return nil
}
