package anonymizer

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Store holds the server-side registrations. Implementations must be safe
// for concurrent use; the default is the in-memory sharded store below, but
// the interface lets alternative backends (persistent, replicated, ...)
// slot in behind the server.
type Store interface {
	// Register stores a registration and returns its fresh region ID.
	Register(reg *registration) string
	// Lookup resolves a region ID. It returns ErrUnknownRegion (wrapped)
	// for IDs that were never registered.
	Lookup(id string) (*registration, error)
	// Len reports the number of live registrations.
	Len() int
}

// DefaultShards is the shard count of the default store: enough to keep
// shard contention negligible at hundreds of concurrent connections while
// staying cache-friendly.
const DefaultShards = 64

// storeShard is one lock-striped partition of the sharded store.
type storeShard struct {
	mu   sync.RWMutex
	regs map[string]*registration
}

// shardedStore is an N-way lock-striped in-memory store. Region IDs are
// allocated from a single atomic counter (no lock) and mapped to shards by
// FNV-1a hash, so independent registrations proceed on independent locks.
type shardedStore struct {
	shards []storeShard
	mask   uint32
	nextID atomic.Uint64
}

// NewShardedStore builds the default in-memory store with n shards,
// rounded up to a power of two. n <= 0 selects DefaultShards.
func NewShardedStore(n int) Store {
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	s := &shardedStore{
		shards: make([]storeShard, size),
		mask:   uint32(size - 1),
	}
	for i := range s.shards {
		s.shards[i].regs = make(map[string]*registration)
	}
	return s
}

// shardFor maps a region ID to its shard by FNV-1a hash, inlined over the
// string so the hot path (every store touch of every request) stays
// allocation-free.
func (s *shardedStore) shardFor(id string) *storeShard {
	h := uint32(2166136261) // FNV-1a offset basis
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619 // FNV prime
	}
	return &s.shards[h&s.mask]
}

// Register implements Store.
func (s *shardedStore) Register(reg *registration) string {
	id := fmt.Sprintf("r%d", s.nextID.Add(1))
	sh := s.shardFor(id)
	sh.mu.Lock()
	sh.regs[id] = reg
	sh.mu.Unlock()
	return id
}

// Lookup implements Store.
func (s *shardedStore) Lookup(id string) (*registration, error) {
	if id == "" {
		return nil, fmt.Errorf("%w: missing region id", ErrBadOp)
	}
	sh := s.shardFor(id)
	sh.mu.RLock()
	reg, ok := sh.regs[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRegion, id)
	}
	return reg, nil
}

// Len implements Store.
func (s *shardedStore) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.regs)
		sh.mu.RUnlock()
	}
	return n
}
