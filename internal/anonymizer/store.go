package anonymizer

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reversecloak/reversecloak/internal/accessctl"
	"github.com/reversecloak/reversecloak/internal/cloak"
	"github.com/reversecloak/reversecloak/internal/keys"
	"github.com/reversecloak/reversecloak/internal/temporal"
)

// Registration holds the server-side secret state of one cloaked location:
// the published region, the per-level keys that make it reversible, and
// the owner's access-control policy. The fields never leave the server; a
// Registration crosses package boundaries only as an opaque handle.
type Registration struct {
	region *cloak.CloakedRegion
	// keySet holds stored key material (schema v2 and earlier, plus
	// registrations built by embedders/benchmarks). Derived registrations
	// leave it nil and carry a key reference instead: the keyring, the
	// master-key epoch and level count that re-derive the per-level keys
	// from the registration's ID on demand. Exactly one of the two forms
	// is populated.
	keySet *keys.Set
	// Key reference (derived registrations only).
	keyring   *keys.Keyring
	keyEpoch  uint32
	keyID     string
	keyLevels int
	policy    *accessctl.Policy
	// expiresAt is the registration's expiry instant in unix nanoseconds;
	// 0 means the registration lives until deregistered. Expiry ends the
	// region's recoverability exactly like a deregistration — the
	// reversibility contract is time-bounded when a TTL is set.
	expiresAt int64
}

// NewDerivedRegistration assembles a registration whose per-level keys
// are re-derived from kr on demand rather than stored: the durable record
// for it carries only (id, epoch, levels) and no key material. The caller
// must have cut the region with kr.DeriveSet(epoch, id, levels) — the
// store trusts the reference, it cannot check the region against it.
func NewDerivedRegistration(
	region *cloak.CloakedRegion,
	kr *keys.Keyring, epoch uint32, id string, levels int,
	policy *accessctl.Policy,
) *Registration {
	return &Registration{
		region: region, keyring: kr, keyEpoch: epoch, keyID: id,
		keyLevels: levels, policy: policy,
	}
}

// derived reports whether the registration resolves keys through a
// keyring reference instead of stored material.
func (r *Registration) derived() bool { return r.keySet == nil }

// KeyEpoch returns the master-key epoch a derived registration was cut
// under, or 0 for stored-key registrations.
func (r *Registration) KeyEpoch() uint32 {
	if r.derived() {
		return r.keyEpoch
	}
	return 0
}

// keys resolves the registration's per-level key set: stored material
// as-is, or a fresh derivation through the key reference.
func (r *Registration) keys() (*keys.Set, error) {
	if !r.derived() {
		return r.keySet, nil
	}
	if r.keyring == nil {
		return nil, fmt.Errorf("anonymizer: registration %q has no keyring to derive from", r.keyID)
	}
	return r.keyring.DeriveSet(r.keyEpoch, r.keyID, r.keyLevels)
}

// NewRegistration assembles a registration from its parts. The server
// builds registrations itself on anonymize requests; this constructor
// exists for store benchmarks and alternative frontends.
func NewRegistration(region *cloak.CloakedRegion, ks *keys.Set, policy *accessctl.Policy) *Registration {
	return &Registration{region: region, keySet: ks, policy: policy}
}

// Region returns the published cloaked region (not a copy; treat it as
// read-only).
func (r *Registration) Region() *cloak.CloakedRegion { return r.region }

// Levels returns the number of keyed privacy levels.
func (r *Registration) Levels() int {
	if r.derived() {
		return r.keyLevels
	}
	return r.keySet.Levels()
}

// SetExpiry bounds the registration's lifetime: after t the registration
// is treated as unknown and the GC sweeper reclaims it. The zero time
// clears the bound (live until deregistered). Call before Register; a
// stored registration's expiry must not be mutated.
func (r *Registration) SetExpiry(t time.Time) {
	if t.IsZero() {
		r.expiresAt = 0
		return
	}
	r.expiresAt = t.UnixNano()
}

// Expiry returns the registration's expiry instant (zero = never).
func (r *Registration) Expiry() time.Time {
	if r.expiresAt == 0 {
		return time.Time{}
	}
	return time.Unix(0, r.expiresAt).UTC()
}

// expiredAt reports whether the registration's TTL has elapsed at now
// (unix nanoseconds).
func (r *Registration) expiredAt(now int64) bool {
	return r.expiresAt != 0 && r.expiresAt <= now
}

// DefaultLevel returns the access level the policy grants requesters
// without an explicit entitlement.
func (r *Registration) DefaultLevel() int { return r.policy.DefaultLevel() }

// Grants returns the policy's explicit per-requester entitlements (a
// copy; mutating it changes nothing).
func (r *Registration) Grants() map[string]int { return r.policy.Grants() }

// Reduce peels the registration's region down to level with the
// registration's own keys — the operator-tooling counterpart of the
// server-side reduce, used by `anonymizer dump` to verify that a restored
// or resharded store still reduces every region identically. Levels at or
// above the published one return a clone of the published region.
func (r *Registration) Reduce(engine *cloak.Engine, level int) (*cloak.CloakedRegion, error) {
	if level >= r.Levels() {
		return r.region.Clone(), nil
	}
	ks, err := r.keys()
	if err != nil {
		return nil, err
	}
	grant, err := ks.Grant(level)
	if err != nil {
		return nil, err
	}
	return engine.Deanonymize(r.region, grant, level)
}

// withDefaultExpiry returns reg, or — when reg carries no expiry of its
// own and the store has a default TTL — a shallow copy carrying the
// default. Copying (rather than mutating reg) keeps registering one
// prototype Registration many times safe.
func withDefaultExpiry(reg *Registration, ttl time.Duration, now time.Time) *Registration {
	if ttl <= 0 || reg.expiresAt != 0 {
		return reg
	}
	cp := *reg
	cp.expiresAt = now.Add(ttl).UnixNano()
	return &cp
}

// Store holds the server-side registrations. Implementations must be safe
// for concurrent use; the default is the in-memory sharded store below,
// and OpenDurableStore provides a crash-safe WAL-backed variant behind the
// same interface, so alternative backends (replicated, remote, ...) can
// slot in behind the server.
//
// Every mutation of registration state flows through the Store as a typed
// Mutation — register, set-trust, deregister, expire — applied by one
// shared implementation (regTable.apply), so a durable implementation can
// write-ahead-log each one and replay it identically.
type Store interface {
	// Register stores a registration and returns its fresh region ID. A
	// durable store returns an error when the registration could not be
	// made durable under its fsync policy; the registration is then not
	// acknowledged to the client.
	Register(reg *Registration) (string, error)
	// Lookup resolves a region ID. It returns ErrUnknownRegion (wrapped)
	// for IDs that were never registered, were deregistered, or whose TTL
	// has elapsed — expiry is effective immediately, before the sweeper
	// reclaims the entry.
	Lookup(id string) (*Registration, error)
	// SetTrust updates the registration's access-control policy for one
	// requester (and journals the change in durable implementations).
	SetTrust(id, requester string, toLevel int) error
	// Deregister removes a registration, ending the region's
	// recoverability: after it returns, the keys are gone and no requester
	// can reduce the region again.
	Deregister(id string) error
	// Touch renews a live registration's lease: the expiry becomes ttl
	// from now (ttl <= 0 selects the store's default TTL; with no default
	// either, the bound is cleared and the registration lives until
	// deregistered). It returns the new expiry instant (zero when the
	// bound was cleared). Durable implementations journal the renewal so
	// recovery replays it.
	Touch(id string, ttl time.Duration) (time.Time, error)
	// Len reports the number of stored registrations, counting expired
	// entries the sweeper has not yet reclaimed.
	Len() int
	// SweepExpired reclaims every registration whose TTL has elapsed
	// (as expire mutations through the shared apply path) and reports
	// how many it removed. The background sweeper calls it on its GC
	// interval; it is part of the interface so operators can force a
	// pass when the background sweeper is disabled.
	SweepExpired() (int, error)
	// Close stops background work (GC sweeper, sync and snapshot loops)
	// and releases resources. The server closes the store it created
	// itself; a store installed with WithStore is closed by its owner.
	Close() error
}

// idAllocator is the optional Store capability derived-key registration
// needs: an ID must exist before the region is cut, because the per-level
// keys are derived from it. Both built-in stores implement it.
type idAllocator interface {
	AllocateID() string
}

// cacheInvalidating is the optional Store capability the server's
// read-path cache needs: the store routes fn into every shard's
// regTable, where the shared apply path calls it for each registration
// it removes or replaces. Both built-in stores implement it; against a
// store that does not, the server still serves correctly (Lookup gates
// every cached read) but leaves the cache's memory reclamation to the
// LRU alone, so it declines to build one.
type cacheInvalidating interface {
	setCacheInvalidator(fn func(id string))
}

// DefaultShards is the shard count of the default store: enough to keep
// shard contention negligible at hundreds of concurrent connections while
// staying cache-friendly.
const DefaultShards = 64

// DefaultRegistrationTTL is the registration lifetime `anonymizer serve`
// applies by default, derived from the temporal cloak: a request is only
// temporally relevant while the coarsest tolerance window that contains
// it can still be current, so twice the default sigma_t window bounds the
// useful life of its reversibility (the window that contains the request
// plus the one in flight).
const DefaultRegistrationTTL = 2 * temporal.DefaultSigmaT

// DefaultGCInterval is the default period of the expiry sweeper.
const DefaultGCInterval = time.Minute

// StoreOption tunes the in-memory sharded store's registration lifecycle.
type StoreOption func(*storeConfig)

// storeConfig collects the in-memory store tunables.
type storeConfig struct {
	ttl        time.Duration
	gcInterval time.Duration
	now        func() time.Time
}

// defaultStoreConfig returns the config before options are applied: no
// default TTL (registrations live until deregistered, the historical
// behavior) and the default sweep period for registrations that do carry
// a TTL.
func defaultStoreConfig() storeConfig {
	return storeConfig{gcInterval: DefaultGCInterval, now: time.Now}
}

// WithStoreTTL gives every registration without an expiry of its own a
// default lifetime of d (0 disables the default; registrations then only
// expire when the client set a TTL).
func WithStoreTTL(d time.Duration) StoreOption {
	return func(c *storeConfig) {
		if d >= 0 {
			c.ttl = d
		}
	}
}

// WithStoreGCInterval sets the expiry sweep period (default one minute;
// 0 disables the background sweeper — expired registrations are still
// invisible immediately, but their memory is then only reclaimed by
// explicit SweepExpired calls).
func WithStoreGCInterval(d time.Duration) StoreOption {
	return func(c *storeConfig) {
		if d >= 0 {
			c.gcInterval = d
		}
	}
}

// withStoreClock substitutes the expiry clock (tests).
func withStoreClock(now func() time.Time) StoreOption {
	return func(c *storeConfig) { c.now = now }
}

// storeShard is one lock-striped partition of the sharded store.
type storeShard struct {
	mu  sync.RWMutex
	tab regTable
}

// shardedStore is an N-way lock-striped in-memory store. Region IDs are
// allocated from a single atomic counter (no lock) and mapped to shards by
// FNV-1a hash, so independent registrations proceed on independent locks.
// All four lifecycle mutations route through the shared regTable.apply.
type shardedStore struct {
	shards []storeShard
	mask   uint32
	nextID atomic.Uint64
	cfg    storeConfig

	// The sweeper starts lazily, on the first registration that can
	// expire, so TTL-free stores stay goroutine-free and need no Close.
	gcMu      sync.Mutex
	gcStarted bool
	closed    bool
	stop      chan struct{}
	bg        sync.WaitGroup
}

// NewShardedStore builds the default in-memory store with n shards,
// rounded up to a power of two. n <= 0 selects DefaultShards. Options
// configure the registration TTL and its GC sweeper; a store that never
// sees an expiring registration runs no background work.
func NewShardedStore(n int, opts ...StoreOption) Store {
	cfg := defaultStoreConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	s := &shardedStore{cfg: cfg, stop: make(chan struct{})}
	s.shards, s.mask = makeShards(n)
	return s
}

// makeShards allocates a power-of-two shard slice for n requested shards
// (n <= 0 selects DefaultShards) and returns it with its index mask.
func makeShards(n int) ([]storeShard, uint32) {
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	shards := make([]storeShard, size)
	for i := range shards {
		shards[i].tab = newRegTable()
	}
	return shards, uint32(size - 1)
}

// shardIndex maps a region ID to a shard index by FNV-1a hash, inlined
// over the string so the hot path (every store touch of every request)
// stays allocation-free.
func shardIndex(id string, mask uint32) uint32 {
	h := uint32(2166136261) // FNV-1a offset basis
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619 // FNV prime
	}
	return h & mask
}

// shardFor maps a region ID to its shard.
func (s *shardedStore) shardFor(id string) *storeShard {
	return &s.shards[shardIndex(id, s.mask)]
}

// setCacheInvalidator implements cacheInvalidating: every shard's table
// reports removed registrations to fn from the shared apply path.
func (s *shardedStore) setCacheInvalidator(fn func(id string)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.tab.inval = fn
		sh.mu.Unlock()
	}
}

// mutate applies one lifecycle mutation under its shard's lock — the
// in-memory store's entire write path.
func (s *shardedStore) mutate(m *Mutation) error {
	now := s.cfg.now().UnixNano()
	sh := s.shardFor(m.ID)
	sh.mu.Lock()
	_, err := sh.tab.apply(m, applyLive, now)
	sh.mu.Unlock()
	return err
}

// AllocateID hands out a fresh region ID without registering anything —
// the hook derived-key registrations need, because their keys are derived
// from the ID before the region is cut. An allocated-but-never-registered
// ID is simply a hole in the sequence.
func (s *shardedStore) AllocateID() string {
	return fmt.Sprintf("r%d", s.nextID.Add(1))
}

// Register implements Store; the in-memory store cannot fail. A derived
// registration already owns its ID (its keys were derived from it), so it
// registers under that ID instead of drawing a fresh one.
func (s *shardedStore) Register(reg *Registration) (string, error) {
	reg = withDefaultExpiry(reg, s.cfg.ttl, s.cfg.now())
	id := reg.keyID
	if !reg.derived() || id == "" {
		id = s.AllocateID()
	}
	if err := s.mutate(&Mutation{Op: MutRegister, ID: id, Reg: reg}); err != nil {
		return "", err
	}
	if reg.expiresAt != 0 {
		s.ensureSweeper()
	}
	return id, nil
}

// Lookup implements Store.
func (s *shardedStore) Lookup(id string) (*Registration, error) {
	if id == "" {
		return nil, fmt.Errorf("%w: missing region id", ErrBadOp)
	}
	now := s.cfg.now().UnixNano()
	sh := s.shardFor(id)
	sh.mu.RLock()
	reg := sh.tab.lookup(id, now)
	sh.mu.RUnlock()
	if reg == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRegion, id)
	}
	return reg, nil
}

// SetTrust implements Store.
func (s *shardedStore) SetTrust(id, requester string, toLevel int) error {
	return s.mutate(&Mutation{Op: MutSetTrust, ID: id, Requester: requester, ToLevel: toLevel})
}

// Deregister implements Store.
func (s *shardedStore) Deregister(id string) error {
	if id == "" {
		return fmt.Errorf("%w: missing region id", ErrBadOp)
	}
	return s.mutate(&Mutation{Op: MutDeregister, ID: id})
}

// Touch implements Store: the lease renewal flows through the shared
// apply path like every other mutation.
func (s *shardedStore) Touch(id string, ttl time.Duration) (time.Time, error) {
	if id == "" {
		return time.Time{}, fmt.Errorf("%w: missing region id", ErrBadOp)
	}
	if ttl <= 0 {
		ttl = s.cfg.ttl
	}
	var expiresAt int64
	if ttl > 0 {
		expiresAt = s.cfg.now().Add(ttl).UnixNano()
	}
	if err := s.mutate(&Mutation{Op: MutTouch, ID: id, ExpiresAt: expiresAt}); err != nil {
		return time.Time{}, err
	}
	if expiresAt == 0 {
		return time.Time{}, nil
	}
	s.ensureSweeper()
	return time.Unix(0, expiresAt).UTC(), nil
}

// Len implements Store.
func (s *shardedStore) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.tab.regs)
		sh.mu.RUnlock()
	}
	return n
}

// SweepExpired implements Store: it removes every registration whose TTL
// has elapsed, as expire mutations through the shared apply path. The
// in-memory sweep cannot fail.
func (s *shardedStore) SweepExpired() (int, error) {
	now := s.cfg.now().UnixNano()
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for id, reg := range sh.tab.regs {
			if !reg.expiredAt(now) {
				continue
			}
			if applied, _ := sh.tab.apply(&Mutation{Op: MutExpire, ID: id}, applyLive, now); applied {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n, nil
}

// ensureSweeper starts the background GC loop once, on the first
// registration that can expire.
func (s *shardedStore) ensureSweeper() {
	if s.cfg.gcInterval <= 0 {
		return
	}
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	if s.gcStarted || s.closed {
		return
	}
	s.gcStarted = true
	s.bg.Add(1)
	go tickLoop(&s.bg, s.stop, s.cfg.gcInterval, func() { _, _ = s.SweepExpired() })
}

// tickLoop runs fn every period until stop closes — the shared shape of
// every store background loop (GC sweep, WAL sync, snapshot compaction).
// The caller has already added the goroutine to wg.
func tickLoop(wg *sync.WaitGroup, stop <-chan struct{}, period time.Duration, fn func()) {
	defer wg.Done()
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			fn()
		case <-stop:
			return
		}
	}
}

// Close stops the GC sweeper. The store itself stays usable — it holds no
// resources beyond memory — so closing is only about ending background
// work.
func (s *shardedStore) Close() error {
	s.gcMu.Lock()
	if s.closed {
		s.gcMu.Unlock()
		return nil
	}
	s.closed = true
	close(s.stop)
	s.gcMu.Unlock()
	s.bg.Wait()
	return nil
}
