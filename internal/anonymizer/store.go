package anonymizer

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/reversecloak/reversecloak/internal/accessctl"
	"github.com/reversecloak/reversecloak/internal/cloak"
	"github.com/reversecloak/reversecloak/internal/keys"
)

// Registration holds the server-side secret state of one cloaked location:
// the published region, the per-level keys that make it reversible, and
// the owner's access-control policy. The fields never leave the server; a
// Registration crosses package boundaries only as an opaque handle.
type Registration struct {
	region *cloak.CloakedRegion
	keySet *keys.Set
	policy *accessctl.Policy
}

// NewRegistration assembles a registration from its parts. The server
// builds registrations itself on anonymize requests; this constructor
// exists for store benchmarks and alternative frontends.
func NewRegistration(region *cloak.CloakedRegion, ks *keys.Set, policy *accessctl.Policy) *Registration {
	return &Registration{region: region, keySet: ks, policy: policy}
}

// Region returns the published cloaked region (not a copy; treat it as
// read-only).
func (r *Registration) Region() *cloak.CloakedRegion { return r.region }

// Levels returns the number of keyed privacy levels.
func (r *Registration) Levels() int { return r.keySet.Levels() }

// Store holds the server-side registrations. Implementations must be safe
// for concurrent use; the default is the in-memory sharded store below,
// and OpenDurableStore provides a crash-safe WAL-backed variant behind the
// same interface, so alternative backends (replicated, remote, ...) can
// slot in behind the server.
//
// Every mutation of registration state flows through the Store — including
// trust updates, which touch a policy owned by a registration — so that a
// durable implementation can write-ahead-log each one.
type Store interface {
	// Register stores a registration and returns its fresh region ID. A
	// durable store returns an error when the registration could not be
	// made durable under its fsync policy; the registration is then not
	// visible and must not be acknowledged to the client.
	Register(reg *Registration) (string, error)
	// Lookup resolves a region ID. It returns ErrUnknownRegion (wrapped)
	// for IDs that were never registered or were deregistered.
	Lookup(id string) (*Registration, error)
	// SetTrust updates the registration's access-control policy for one
	// requester (and journals the change in durable implementations).
	SetTrust(id, requester string, toLevel int) error
	// Deregister removes a registration, ending the region's
	// recoverability: after it returns, the keys are gone and no requester
	// can reduce the region again.
	Deregister(id string) error
	// Len reports the number of live registrations.
	Len() int
}

// DefaultShards is the shard count of the default store: enough to keep
// shard contention negligible at hundreds of concurrent connections while
// staying cache-friendly.
const DefaultShards = 64

// storeShard is one lock-striped partition of the sharded store.
type storeShard struct {
	mu   sync.RWMutex
	regs map[string]*Registration
}

// shardedStore is an N-way lock-striped in-memory store. Region IDs are
// allocated from a single atomic counter (no lock) and mapped to shards by
// FNV-1a hash, so independent registrations proceed on independent locks.
type shardedStore struct {
	shards []storeShard
	mask   uint32
	nextID atomic.Uint64
}

// NewShardedStore builds the default in-memory store with n shards,
// rounded up to a power of two. n <= 0 selects DefaultShards.
func NewShardedStore(n int) Store {
	s := &shardedStore{}
	s.shards, s.mask = makeShards(n)
	return s
}

// makeShards allocates a power-of-two shard slice for n requested shards
// (n <= 0 selects DefaultShards) and returns it with its index mask.
func makeShards(n int) ([]storeShard, uint32) {
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	shards := make([]storeShard, size)
	for i := range shards {
		shards[i].regs = make(map[string]*Registration)
	}
	return shards, uint32(size - 1)
}

// shardIndex maps a region ID to a shard index by FNV-1a hash, inlined
// over the string so the hot path (every store touch of every request)
// stays allocation-free.
func shardIndex(id string, mask uint32) uint32 {
	h := uint32(2166136261) // FNV-1a offset basis
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619 // FNV prime
	}
	return h & mask
}

// shardFor maps a region ID to its shard.
func (s *shardedStore) shardFor(id string) *storeShard {
	return &s.shards[shardIndex(id, s.mask)]
}

// Register implements Store; the in-memory store cannot fail.
func (s *shardedStore) Register(reg *Registration) (string, error) {
	id := fmt.Sprintf("r%d", s.nextID.Add(1))
	sh := s.shardFor(id)
	sh.mu.Lock()
	sh.regs[id] = reg
	sh.mu.Unlock()
	return id, nil
}

// Lookup implements Store.
func (s *shardedStore) Lookup(id string) (*Registration, error) {
	if id == "" {
		return nil, fmt.Errorf("%w: missing region id", ErrBadOp)
	}
	sh := s.shardFor(id)
	sh.mu.RLock()
	reg, ok := sh.regs[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRegion, id)
	}
	return reg, nil
}

// SetTrust implements Store by mutating the registration's policy in
// place (the policy is itself concurrency-safe).
func (s *shardedStore) SetTrust(id, requester string, toLevel int) error {
	reg, err := s.Lookup(id)
	if err != nil {
		return err
	}
	return reg.policy.SetTrust(requester, toLevel)
}

// Deregister implements Store.
func (s *shardedStore) Deregister(id string) error {
	if id == "" {
		return fmt.Errorf("%w: missing region id", ErrBadOp)
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	_, ok := sh.regs[id]
	delete(sh.regs, id)
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRegion, id)
	}
	return nil
}

// Len implements Store.
func (s *shardedStore) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.regs)
		sh.mu.RUnlock()
	}
	return n
}
