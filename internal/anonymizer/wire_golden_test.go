package anonymizer

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/reversecloak/reversecloak/internal/anonymizer/tenant"
)

// The golden transcripts under testdata/protocol pin the v1 wire encoding
// byte by byte (modulo JSON key order): each *.ndjson file alternates a
// raw request line, sent verbatim over TCP, with the expected response as
// golden JSON. The comparison is exact on the KEY SET as well as the
// values — a field that appears on the wire but not in the golden file
// (or vice versa) fails the test — so any protocol drift, intended or
// not, shows up as a loud diff against a reviewed file.
//
// Golden values support three forms beyond literals:
//
//	"<any>"           matches any value (e.g. a freshly cloaked region)
//	"<capture:NAME>"  matches any string and binds it to NAME
//	"...${NAME}..."   substitutes a captured value (requests and golden)
//
// Lines that are empty or start with '#' are comments.

// expandVars substitutes ${NAME} occurrences in s.
func expandVars(s string, vars map[string]string) string {
	for name, val := range vars {
		s = strings.ReplaceAll(s, "${"+name+"}", val)
	}
	return s
}

// matchGolden compares a parsed golden value against the actual one,
// recording captures. path names the position for error messages.
func matchGolden(path string, want, got any, vars map[string]string) error {
	switch w := want.(type) {
	case string:
		if w == "<any>" {
			return nil
		}
		if name, ok := strings.CutPrefix(w, "<capture:"); ok {
			name = strings.TrimSuffix(name, ">")
			g, ok := got.(string)
			if !ok {
				return fmt.Errorf("%s: capture %q needs a string, got %T", path, name, got)
			}
			vars[name] = g
			return nil
		}
		w = expandVars(w, vars)
		if g, ok := got.(string); !ok || g != w {
			return fmt.Errorf("%s: got %#v, want %q", path, got, w)
		}
		return nil
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			return fmt.Errorf("%s: got %T, want object", path, got)
		}
		var wantKeys, gotKeys []string
		for k := range w {
			wantKeys = append(wantKeys, k)
		}
		for k := range g {
			gotKeys = append(gotKeys, k)
		}
		sort.Strings(wantKeys)
		sort.Strings(gotKeys)
		if !reflect.DeepEqual(wantKeys, gotKeys) {
			return fmt.Errorf("%s: key set drifted: got %v, want %v", path, gotKeys, wantKeys)
		}
		for _, k := range wantKeys {
			if err := matchGolden(path+"."+k, w[k], g[k], vars); err != nil {
				return err
			}
		}
		return nil
	case []any:
		g, ok := got.([]any)
		if !ok {
			return fmt.Errorf("%s: got %T, want array", path, got)
		}
		if len(g) != len(w) {
			return fmt.Errorf("%s: got %d items, want %d", path, len(g), len(w))
		}
		for i := range w {
			if err := matchGolden(fmt.Sprintf("%s[%d]", path, i), w[i], g[i], vars); err != nil {
				return err
			}
		}
		return nil
	default:
		if !reflect.DeepEqual(want, got) {
			return fmt.Errorf("%s: got %#v, want %#v", path, got, want)
		}
		return nil
	}
}

// replayTranscript runs one golden file against a live connection.
func replayTranscript(t *testing.T, addr, file string) {
	t.Helper()
	raw, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	in := bufio.NewScanner(conn)
	in.Buffer(make([]byte, 0, 1<<20), 16<<20)

	vars := make(map[string]string)
	var lines []string
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines = append(lines, line)
	}
	if len(lines)%2 != 0 {
		t.Fatalf("%s: %d non-comment lines; transcripts alternate request and response", file, len(lines))
	}
	for i := 0; i < len(lines); i += 2 {
		req := expandVars(lines[i], vars)
		if _, err := fmt.Fprintln(conn, req); err != nil {
			t.Fatalf("line %d: send: %v", i+1, err)
		}
		if !in.Scan() {
			t.Fatalf("line %d: no response to %s (scan err %v)", i+1, req, in.Err())
		}
		var want, got any
		if err := json.Unmarshal([]byte(lines[i+1]), &want); err != nil {
			t.Fatalf("line %d: golden response is not JSON: %v", i+2, err)
		}
		if err := json.Unmarshal(in.Bytes(), &got); err != nil {
			t.Fatalf("line %d: wire response is not JSON: %v (%s)", i+2, err, in.Bytes())
		}
		if err := matchGolden("resp", want, got, vars); err != nil {
			t.Errorf("%s line %d: request %s\n  wire %s\n  %v",
				filepath.Base(file), i+2, req, in.Bytes(), err)
		}
	}
}

// TestWireGoldenTranscripts replays every testdata/protocol transcript
// against a live server, one fresh connection per file. Files named
// repl_*.ndjson run against a DURABLE server (two shards, no traffic),
// since the replication ops require a store with a mutation stream;
// files named auth_*.ndjson run against a TENANT-ENABLED server loaded
// from testdata/protocol/tenants.json (the auth op is a bad operation
// everywhere else); all others run against the default in-memory
// server.
func TestWireGoldenTranscripts(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "protocol", "*.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no golden transcripts under testdata/protocol")
	}
	_, addr, _ := startServer(t)
	g, density := testGrid(t)
	durableSrv := newTestServer(t, g, density,
		WithStore(openDurable(t, t.TempDir(), WithDurableShards(2))))
	durableAddr := startTestServer(t, durableSrv)
	raw, err := os.ReadFile(filepath.Join("testdata", "protocol", "tenants.json"))
	if err != nil {
		t.Fatal(err)
	}
	reg, err := tenant.FromJSON(raw)
	if err != nil {
		t.Fatal(err)
	}
	tenantSrv := newTestServer(t, g, density, WithTenants(reg))
	tenantAddr := startTestServer(t, tenantSrv)
	for _, file := range files {
		file := file
		target := addr
		switch {
		case strings.HasPrefix(filepath.Base(file), "repl_"):
			target = durableAddr
		case strings.HasPrefix(filepath.Base(file), "auth_"):
			target = tenantAddr
		}
		t.Run(filepath.Base(file), func(t *testing.T) {
			replayTranscript(t, target, file)
		})
	}
}
