package anonymizer

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ReshardStats describes what an offline Reshard migration moved.
type ReshardStats struct {
	// SourceShards and TargetShards are the shard counts of the two
	// directories (target after power-of-two rounding).
	SourceShards int
	TargetShards int
	// Records is the number of mutation records read from the source
	// (snapshot entries plus WAL records).
	Records int
	// Registrations is the number of live registrations in the migrated
	// store.
	Registrations int
	// TrustUpdates, Deregistrations and Renewals count the WAL mutations
	// replayed.
	TrustUpdates    int
	Deregistrations int
	Renewals        int
	// Expired counts registrations dropped because their TTL had elapsed
	// by migration time — a reshard, like recovery, never resurrects a
	// dead region.
	Expired int
	// TruncatedBytes counts torn source-WAL tail bytes skipped (the source
	// is never modified; reopening it would drop the same bytes).
	TruncatedBytes int64
}

// Reshard migrates a durable data directory to a new shard count: it
// streams every source shard's snapshot and WAL in order, decodes each
// record back into its typed Mutation, and replays it through the shared
// regTable.apply path into a fresh store at dstDir — the same code path
// recovery uses, so the migrated state can no more drift from the source
// than a reopened store can. Region IDs, trust tables and TTL expiries are
// preserved bit-for-bit (they ride inside the records), and the ID
// allocator resumes past the highest ID the source ever issued, so a
// resharded store never re-issues an ID.
//
// The migration is offline: srcDir must not be open in a live store and is
// only ever read; dstDir must not exist (or be an empty directory). opts
// apply to the destination store (fsync policy, TTL default, ...); a
// WithDurableShards among them is overridden by shards. The destination is
// compacted into snapshots and cleanly closed before Reshard returns, so
// it reopens without any WAL replay.
//
// Why reshard at all: the shard count is fixed in META.json at directory
// initialization, and the right count is workload-dependent — fsync=always
// deployments want few shards (group-commit cohorts grow with writers per
// WAL), fsync=interval deployments want many (parallel background syncs).
func Reshard(srcDir, dstDir string, shards int, opts ...DurabilityOption) (*ReshardStats, error) {
	if shards < 1 {
		return nil, fmt.Errorf("%w: reshard to %d shards", ErrBadOp, shards)
	}
	srcShards, srcVersion, err := readMeta(srcDir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("anonymizer: %s is not a durable data directory (no %s)", srcDir, metaFile)
		}
		return nil, err
	}
	if entries, err := os.ReadDir(dstDir); err == nil && len(entries) > 0 {
		return nil, fmt.Errorf("anonymizer: reshard target %s is not empty", dstDir)
	} else if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("anonymizer: reshard target: %w", err)
	}

	dst, err := OpenDurableStore(dstDir, append(append([]DurabilityOption{}, opts...), WithDurableShards(shards))...)
	if err != nil {
		return nil, err
	}
	defer func() { _ = dst.Close() }()

	stats := &ReshardStats{SourceShards: srcShards, TargetShards: len(dst.shards)}
	openNow := dst.cfg.now().UnixNano()
	var maxID uint64
	// The same tally recovery keeps: counted per mutation kind, registers
	// dropped by expiry once per ID.
	tally := newReplayTally()
	ingest := func(rec *walRecord) error {
		if n, ok := parseRegionID(rec.ID); ok && n > maxID {
			maxID = n
		}
		m, err := mutationFromRecord(rec, dst.cfg.keyring)
		if err != nil {
			return err
		}
		stats.Records++
		applied, err := dst.ingest(m, openNow)
		if err != nil {
			return err
		}
		tally.note(m, applied)
		return nil
	}

	if srcVersion >= 2 {
		if err := reshardV2Source(srcDir, srcShards, stats, &maxID, ingest); err != nil {
			return nil, err
		}
	} else {
		for i := 0; i < srcShards; i++ {
			if err := reshardShard(srcDir, i, stats, &maxID, ingest); err != nil {
				return nil, err
			}
		}
	}
	stats.TrustUpdates = tally.TrustUpdates
	stats.Deregistrations = tally.Deregistrations
	stats.Renewals = tally.Renewals
	stats.Expired = tally.Expired
	// Replay is expiry-blind (a later touch record may renew a lapsed
	// lease); now that the full stream has replayed, reclaim what is
	// still dead — the same end-of-stream sweep recovery performs.
	for _, sh := range dst.shards {
		sh.mu.Lock()
		stats.Expired += sh.tab.dropExpiredLocked(openNow)
		sh.mu.Unlock()
	}

	// The allocator must clear every ID the source ever issued — including
	// deregistered ones — before the snapshot headers pin it.
	dst.nextID.Store(maxID)
	if err := dst.Snapshot(); err != nil {
		return nil, fmt.Errorf("anonymizer: reshard snapshot: %w", err)
	}
	stats.Registrations = dst.Len()
	if err := dst.Close(); err != nil {
		return nil, fmt.Errorf("anonymizer: reshard close: %w", err)
	}
	return stats, nil
}

// reshardShard streams one source shard — snapshot first, then WAL — into
// ingest, reading the files strictly read-only. A torn WAL tail is
// tolerated (and counted) like recovery tolerates it; a damaged snapshot
// is real corruption and aborts the migration.
func reshardShard(
	srcDir string,
	i int,
	stats *ReshardStats,
	maxID *uint64,
	ingest func(*walRecord) error,
) error {
	snapPath := filepath.Join(srcDir, shardSnapName(i))
	if snap, err := os.Open(snapPath); err == nil {
		_, rerr := readRecords(snap, func(rec *walRecord) error {
			if rec.Type == recSnapHeader {
				if rec.NextID > *maxID {
					*maxID = rec.NextID
				}
				return nil
			}
			if rec.Type != recRegister {
				return fmt.Errorf("%w: unexpected %q record in snapshot", ErrCorruptLog, rec.Type)
			}
			return ingest(rec)
		})
		_ = snap.Close()
		if rerr != nil {
			if errors.Is(rerr, errTornTail) {
				rerr = fmt.Errorf("%w: truncated snapshot %s", ErrCorruptLog, snapPath)
			}
			return rerr
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("anonymizer: reshard snapshot open: %w", err)
	}

	walPath := filepath.Join(srcDir, shardWALName(i))
	wal, err := os.Open(walPath)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("anonymizer: reshard wal open: %w", err)
	}
	defer func() { _ = wal.Close() }()
	intact, rerr := readRecords(wal, func(rec *walRecord) error {
		if rec.Type == recSnapHeader {
			return fmt.Errorf("%w: unexpected %q record in wal", ErrCorruptLog, rec.Type)
		}
		return ingest(rec)
	})
	if rerr != nil && !errors.Is(rerr, errTornTail) {
		return fmt.Errorf("anonymizer: reshard replaying %s: %w", walPath, rerr)
	}
	if end, err := wal.Seek(0, io.SeekEnd); err == nil && end > intact {
		stats.TruncatedBytes += end - intact
	}
	return nil
}

// reshardV2Source streams every shard of a unified-log source directory —
// snapshot records first, then the shard's post-snapshot log records —
// into ingest, reading strictly read-only. The per-shard ordering matches
// reshardShard's, so the destination is independent of the source layout.
func reshardV2Source(
	srcDir string,
	srcShards int,
	stats *ReshardStats,
	maxID *uint64,
	ingest func(*walRecord) error,
) error {
	streams, truncated, err := readDirStreams(srcDir, srcShards)
	if err != nil {
		return err
	}
	stats.TruncatedBytes += truncated
	for i := range streams {
		st := &streams[i]
		if len(st.snap) > 0 {
			if _, err := readRecords(bytes.NewReader(st.snap), func(rec *walRecord) error {
				if rec.Type == recSnapHeader {
					if rec.NextID > *maxID {
						*maxID = rec.NextID
					}
					return nil
				}
				if rec.Type != recRegister {
					return fmt.Errorf("%w: unexpected %q record in snapshot", ErrCorruptLog, rec.Type)
				}
				return ingest(rec)
			}); err != nil {
				return err
			}
		}
		for _, fr := range st.frames {
			var rec walRecord
			if err := json.Unmarshal(fr.payload, &rec); err != nil {
				return fmt.Errorf("%w: %v", ErrCorruptLog, err)
			}
			if err := ingest(&rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// ingest journals and applies one replayed mutation during an offline
// migration — the write path of Reshard. It routes through the same
// appendLocked + regTable.apply pair as the live mutate path, but in
// replay mode: mutations whose target is gone (expired, deregistered in a
// later record) are skipped, never fatal.
func (s *DurableStore) ingest(m *Mutation, openNow int64) (bool, error) {
	sh := s.shardFor(m.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, err := s.appendLocked(sh, recordFromMutation(m)); err != nil {
		return false, err
	}
	applied, err := sh.tab.apply(m, applyReplay, openNow)
	if err != nil {
		return false, err
	}
	// Compact on the usual cadence so a large migration's intermediate WAL
	// files stay bounded; the final Snapshot compacts whatever remains.
	s.maybeSnapshotLocked(sh)
	return applied, nil
}
