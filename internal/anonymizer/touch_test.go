package anonymizer

import (
	"errors"
	"testing"
	"time"
)

// The touch (lease renewal) mutation: mobile clients re-reporting their
// location extend the registration they hold instead of re-registering.
// The renewal is a journaled mutation like every other lifecycle change,
// so it must survive recovery — including the hard case where the
// ORIGINAL TTL elapses while the store is down but a touch had already
// extended it.

// TestTouchExtendsLease pins the live semantics on both store kinds.
func TestTouchExtendsLease(t *testing.T) {
	clk := newFakeClock()
	stores := map[string]Store{
		"memory":  NewShardedStore(4, WithStoreGCInterval(0), withStoreClock(clk.Now)),
		"durable": openDurable(t, t.TempDir(), WithGCInterval(0), withDurableClock(clk.Now)),
	}
	for name, st := range stores {
		t.Run(name, func(t *testing.T) {
			reg := fakeRegistration(t, 1)
			reg.SetExpiry(clk.Now().Add(10 * time.Second))
			id, err := st.Register(reg)
			if err != nil {
				t.Fatal(err)
			}
			clk.Advance(5 * time.Second)
			expiry, err := st.Touch(id, 30*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if want := clk.Now().Add(30 * time.Second); !expiry.Equal(want) {
				t.Fatalf("Touch expiry = %v, want %v", expiry, want)
			}
			clk.Advance(10 * time.Second) // past the original TTL
			if _, err := st.Lookup(id); err != nil {
				t.Fatalf("renewed registration expired: %v", err)
			}
			clk.Advance(25 * time.Second) // past the renewed TTL
			if _, err := st.Lookup(id); !errors.Is(err, ErrUnknownRegion) {
				t.Fatalf("lapsed renewal still visible: %v", err)
			}
			// Touching a lapsed registration is refused like any other
			// mutation of an unknown region.
			if _, err := st.Touch(id, time.Hour); !errors.Is(err, ErrUnknownRegion) {
				t.Fatalf("touch of expired registration: %v", err)
			}
			if _, err := st.Touch("r424242", time.Hour); !errors.Is(err, ErrUnknownRegion) {
				t.Fatalf("touch of unknown region: %v", err)
			}
		})
	}
}

// TestTouchClearsBoundWithoutTTL: ttl 0 on a store without a default TTL
// clears the expiry bound.
func TestTouchClearsBoundWithoutTTL(t *testing.T) {
	clk := newFakeClock()
	st := openDurable(t, t.TempDir(), WithGCInterval(0), withDurableClock(clk.Now))
	reg := fakeRegistration(t, 1)
	reg.SetExpiry(clk.Now().Add(10 * time.Second))
	id, err := st.Register(reg)
	if err != nil {
		t.Fatal(err)
	}
	expiry, err := st.Touch(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !expiry.IsZero() {
		t.Fatalf("cleared bound reported expiry %v", expiry)
	}
	clk.Advance(time.Hour)
	if _, err := st.Lookup(id); err != nil {
		t.Fatalf("unbounded registration expired: %v", err)
	}
}

// TestTouchDefaultTTL: ttl 0 selects the store's configured default.
func TestTouchDefaultTTL(t *testing.T) {
	clk := newFakeClock()
	st := openDurable(t, t.TempDir(),
		WithGCInterval(0), WithTTL(20*time.Second), withDurableClock(clk.Now))
	id, err := st.Register(fakeRegistration(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(15 * time.Second)
	if _, err := st.Touch(id, 0); err != nil {
		t.Fatal(err)
	}
	clk.Advance(15 * time.Second) // past the original default TTL
	if _, err := st.Lookup(id); err != nil {
		t.Fatalf("renewed registration expired: %v", err)
	}
	clk.Advance(10 * time.Second) // past the renewed default TTL
	if _, err := st.Lookup(id); !errors.Is(err, ErrUnknownRegion) {
		t.Fatalf("lapsed renewal still visible: %v", err)
	}
}

// TestTouchSurvivesRecovery is the crash-safety half: a renewal made
// before a crash keeps the registration alive through a downtime that
// outlives the ORIGINAL TTL — replay must not drop the register record
// just because its own expiry lies in the past, and the trust grants
// applied before the renewal must survive with it.
func TestTouchSurvivesRecovery(t *testing.T) {
	clk := newFakeClock()
	dir := t.TempDir()
	st := openDurable(t, dir, WithGCInterval(0), withDurableClock(clk.Now))
	reg := fakeRegistration(t, 2)
	reg.SetExpiry(clk.Now().Add(10 * time.Second))
	id, err := st.Register(reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetTrust(id, "doctor", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Touch(id, time.Hour); err != nil {
		t.Fatal(err)
	}
	// A second registration whose lease is NOT renewed: it must die in
	// the same downtime the renewed one survives.
	doomed := fakeRegistration(t, 1)
	doomed.SetExpiry(clk.Now().Add(10 * time.Second))
	doomedID, err := st.Register(doomed)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	clk.Advance(30 * time.Second) // past the original TTLs, inside the renewal
	st2 := openDurable(t, dir, WithGCInterval(0), withDurableClock(clk.Now))
	rec := st2.Recovery()
	if rec.Renewals != 1 {
		t.Errorf("Recovery().Renewals = %d, want 1", rec.Renewals)
	}
	if rec.Expired != 1 {
		t.Errorf("Recovery().Expired = %d, want 1 (the unrenewed registration)", rec.Expired)
	}
	got, err := st2.Lookup(id)
	if err != nil {
		t.Fatalf("renewed registration lost in recovery: %v", err)
	}
	if got.Grants()["doctor"] != 1 {
		t.Errorf("trust grant lost through renewal recovery: %v", got.Grants())
	}
	if _, err := st2.Lookup(doomedID); !errors.Is(err, ErrUnknownRegion) {
		t.Fatalf("unrenewed registration resurrected: %v", err)
	}

	// And the renewal itself ends: past the renewed TTL the registration
	// is gone on the next reopen too.
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Hour)
	st3 := openDurable(t, dir, WithGCInterval(0), withDurableClock(clk.Now))
	if _, err := st3.Lookup(id); !errors.Is(err, ErrUnknownRegion) {
		t.Fatalf("lapsed renewal resurrected: %v", err)
	}
}

// TestTouchOverWire pins the wire op end to end: anonymize with a TTL,
// touch it, and observe the extended expiry.
func TestTouchOverWire(t *testing.T) {
	_, addr, _ := startServer(t)
	c := dial(t, addr)
	id, _, err := c.AnonymizeTTL(42, testProfile(), "RGE", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	expiry, err := c.Touch(id, time.Hour)
	if err != nil {
		t.Fatalf("Touch: %v", err)
	}
	if until := time.Until(expiry); until < 50*time.Minute || until > 70*time.Minute {
		t.Fatalf("touched expiry %v is not ~1h out", expiry)
	}
	if _, _, err := c.GetRegion(id); err != nil {
		t.Fatalf("GetRegion after touch: %v", err)
	}
	if _, err := c.Touch("r999999", time.Hour); !errors.Is(err, ErrRemote) {
		t.Fatalf("touch of unknown region over wire: %v", err)
	}
}
