package anonymizer

import (
	"os"
	"runtime"
	"sync"
	"sync/atomic"
)

// groupCommit coalesces concurrent fsync=always waiters on one WAL into
// one fsync per cohort. Appenders journal and apply their mutation under
// the shard lock, release it, and then wait here for their record's byte
// offset to become durable: the first waiter that finds no sync in flight
// becomes the leader and fsyncs once on behalf of everything appended so
// far, while the cohort just blocks on the condition variable. While the
// leader's fsync runs, later appenders keep journaling and form the next
// cohort, so the fsync cost is amortized over every record appended per
// disk round-trip instead of being paid once per mutation (the E17
// ~100µs/op tax; E18 measures the recovery).
//
// Offsets are only meaningful within one WAL generation: snapshot
// compaction truncates the log and bumps the epoch, and waiters from an
// older epoch complete successfully at once — the snapshot that truncated
// their records was itself fsynced before the truncation, so their
// mutation is durable via the snapshot.
type groupCommit struct {
	mu   sync.Mutex
	cond *sync.Cond
	// syncing marks a leader's fsync in flight.
	syncing bool
	// synced is the highest WAL offset known durable in the current epoch.
	synced int64
	// epoch counts WAL truncations (snapshot compactions).
	epoch uint64
	// err/errSeq report failed sync rounds: every waiter that was already
	// queued when a round failed observes the bumped errSeq and returns
	// the error, because its record may be in the unsynced tail.
	err    error
	errSeq uint64

	// rounds counts completed leader fsyncs and waits the mutations that
	// entered the commit path — their ratio is the amortization factor
	// exposed on /metrics.
	rounds atomic.Int64
	waits  atomic.Int64
}

// init prepares the condition variable; call once at shard creation.
func (g *groupCommit) init() {
	g.cond = sync.NewCond(&g.mu)
}

// epochLocked returns the current epoch. Call while holding the shard
// lock, so the (offset, epoch) pair handed to wait is consistent with the
// append it describes.
func (g *groupCommit) epochLocked() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch
}

// noteTruncate records a WAL truncation. Call while holding the shard
// lock (truncation happens under it); pending waiters complete
// successfully, their records being durable via the just-written
// snapshot.
func (g *groupCommit) noteTruncate() {
	g.mu.Lock()
	g.epoch++
	g.synced = 0
	g.cond.Broadcast()
	g.mu.Unlock()
}

// wait blocks until the WAL is durably synced past off (an offset
// captured in the given epoch), electing a sync leader as needed. end
// reports the WAL's current append end without locks, so a leader covers
// every record fully appended before its fsync begins.
func (g *groupCommit) wait(wal *os.File, end *atomic.Int64, off int64, epoch uint64) error {
	g.waits.Add(1)
	g.mu.Lock()
	defer g.mu.Unlock()
	seq := g.errSeq
	for {
		if g.epoch != epoch {
			return nil // truncated away: durable via the snapshot
		}
		if g.synced >= off {
			return nil
		}
		if g.errSeq != seq {
			return g.err
		}
		if !g.syncing {
			// Become the leader: sync once for the whole cohort. The
			// target is read before the fsync, so only records the fsync
			// is guaranteed to cover are marked durable.
			g.syncing = true
			targetEpoch := g.epoch
			g.mu.Unlock()
			// Accumulation window: writers released by the previous round
			// re-append within microseconds, so yielding a few times before
			// reading the target folds them into this cohort instead of
			// making them wait out two fsyncs. A handful of scheduler
			// yields costs nanoseconds against a ~100µs fsync.
			target := end.Load()
			for i := 0; i < 8; i++ {
				runtime.Gosched()
				if t := end.Load(); t <= target {
					break
				} else {
					target = t
				}
			}
			err := wal.Sync()
			g.rounds.Add(1)
			g.mu.Lock()
			g.syncing = false
			if err != nil {
				g.err = err
				g.errSeq++
			} else if g.epoch == targetEpoch && target > g.synced {
				g.synced = target
			}
			g.cond.Broadcast()
			continue
		}
		g.cond.Wait()
	}
}
