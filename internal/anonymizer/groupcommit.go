package anonymizer

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// groupCommit coalesces concurrent fsync=always waiters on the store's
// unified log into one fsync per cohort. Appenders journal and apply
// their mutation under their shard lock, release it, and then wait here
// for their record's logical log offset to become durable: the first
// waiter that finds no sync in flight becomes the leader and fsyncs once
// on behalf of everything appended so far — ACROSS EVERY SHARD, which is
// the point of the single-log layout: the per-shard engine ran one such
// cohort per shard and the N fsyncs serialized in the filesystem
// journal, so shard count multiplied the floor latency (E18/E21). While
// the leader's fsync runs, later appenders keep journaling and form the
// next cohort.
//
// Offsets are logical and monotonic — the log only ever grows (reclaim
// drops whole prefix segments without rewinding the append position) —
// so there is no truncation epoch to track, unlike the per-shard
// predecessor of this type.
type groupCommit struct {
	mu   sync.Mutex
	cond *sync.Cond
	// syncing marks a leader's fsync in flight.
	syncing bool
	// synced is the highest logical log offset known durable.
	synced int64
	// queued is the number of waiters currently inside wait — the
	// cohort-size gauge's raw reading.
	queued int
	// err/errSeq report failed sync rounds: every waiter that was already
	// queued when a round failed observes the bumped errSeq and returns
	// the error, because its record may be in the unsynced tail.
	err    error
	errSeq uint64

	// rounds counts completed leader fsyncs and waits the mutations that
	// entered the commit path — their ratio is the amortization factor
	// exposed on /metrics. lastCohort is the waiter count the most recent
	// round released (the cohort-size gauge).
	rounds     atomic.Int64
	waits      atomic.Int64
	lastCohort atomic.Int64
}

// init prepares the condition variable; call once at store open.
func (g *groupCommit) init() {
	g.cond = sync.NewCond(&g.mu)
}

// wait blocks until the log is durably synced past off (a logical offset
// returned by storeLog.append), electing a sync leader as needed.
func (g *groupCommit) wait(lg *storeLog, off int64) error {
	g.waits.Add(1)
	g.mu.Lock()
	defer g.mu.Unlock()
	g.queued++
	defer func() { g.queued-- }()
	seq := g.errSeq
	for {
		if g.synced >= off {
			return nil
		}
		if g.errSeq != seq {
			return g.err
		}
		if !g.syncing {
			// Become the leader: sync once for the whole cohort. The
			// target is read before the fsync, so only offsets the fsync
			// is guaranteed to cover are marked durable (bytes below the
			// target live in sealed segments — durable since rotation —
			// or in the active file syncActive flushes).
			g.syncing = true
			g.mu.Unlock()
			// Accumulation window: writers released by the previous round
			// re-append within microseconds, so yielding a few times before
			// reading the target folds them into this cohort instead of
			// making them wait out two fsyncs. A handful of scheduler
			// yields costs nanoseconds against a ~100µs fsync.
			target := lg.end.Load()
			for i := 0; i < 8; i++ {
				runtime.Gosched()
				if t := lg.end.Load(); t <= target {
					break
				} else {
					target = t
				}
			}
			err := lg.syncActive()
			g.rounds.Add(1)
			g.mu.Lock()
			g.syncing = false
			g.lastCohort.Store(int64(g.queued))
			if err != nil {
				g.err = err
				g.errSeq++
			} else if target > g.synced {
				g.synced = target
			}
			g.cond.Broadcast()
			continue
		}
		g.cond.Wait()
	}
}
