package anonymizer

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

// streamAll drains every shard's tail from the given watermark.
func streamAll(t *testing.T, st *DurableStore, from Watermark) []StreamFrame {
	t.Helper()
	var out []StreamFrame
	for i := 0; i < st.ShardCount(); i++ {
		frames, _, err := st.TailFrom(i, from[i], 0)
		if err != nil {
			t.Fatalf("TailFrom(%d, %d): %v", i, from[i], err)
		}
		out = append(out, frames...)
	}
	return out
}

// TestWatermarkParseFormat pins the CLI spelling round-trip.
func TestWatermarkParseFormat(t *testing.T) {
	w := Watermark{12, 0, 7}
	s := w.String()
	if s != "12,0,7" {
		t.Fatalf("String = %q", s)
	}
	back, err := ParseWatermark(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w, back) {
		t.Fatalf("round trip: %v", back)
	}
	if w.Sum() != 19 {
		t.Fatalf("Sum = %d", w.Sum())
	}
	for _, bad := range []string{"", "1,,2", "x", "1,-2"} {
		if _, err := ParseWatermark(bad); err == nil {
			t.Errorf("ParseWatermark(%q) accepted", bad)
		}
	}
}

// TestStreamOffsetsSurviveCompactionAndReopen pins the core stream
// invariant: per-shard offsets are monotonic across snapshot compaction
// and restarts — the log may be rewritten, the positions never move.
func TestStreamOffsetsSurviveCompactionAndReopen(t *testing.T) {
	dir := t.TempDir()
	st := openDurable(t, dir, WithDurableShards(1), WithSnapshotEvery(0))
	var ids []string
	for i := 0; i < 5; i++ {
		id, err := st.Register(fakeRegistration(t, 1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if got := st.Watermark(); got[0] != 5 {
		t.Fatalf("watermark after 5 registers = %v", got)
	}
	frames := streamAll(t, st, Watermark{0})
	if len(frames) != 5 {
		t.Fatalf("TailFrom(0) = %d frames, want 5", len(frames))
	}
	for i, f := range frames {
		if f.Seq != uint64(i+1) {
			t.Fatalf("frame %d seq = %d", i, f.Seq)
		}
	}

	// Compaction folds the five records into a snapshot: their offsets
	// are no longer individually servable (gap), but the position holds.
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := st.Watermark(); got[0] != 5 {
		t.Fatalf("watermark after snapshot = %v", got)
	}
	if _, _, err := st.TailFrom(0, 0, 0); !errors.Is(err, ErrStreamGap) {
		t.Fatalf("TailFrom(0) after compaction: err = %v, want ErrStreamGap", err)
	}
	if frames, _, err := st.TailFrom(0, 5, 0); err != nil || len(frames) != 0 {
		t.Fatalf("TailFrom(5) after compaction = %d frames, %v", len(frames), err)
	}

	// New appends continue the sequence.
	if err := st.SetTrust(ids[0], "alice", 1); err != nil {
		t.Fatal(err)
	}
	frames, _, err := st.TailFrom(0, 5, 0)
	if err != nil || len(frames) != 1 || frames[0].Seq != 6 {
		t.Fatalf("post-compaction tail = %+v, %v", frames, err)
	}

	// Reopen: the position survives recovery exactly.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openDurable(t, dir)
	if got := st2.Watermark(); got[0] != 6 {
		t.Fatalf("watermark after reopen = %v", got)
	}
	// A fresh mutation must take offset 7, never reuse one.
	if _, err := st2.Register(fakeRegistration(t, 1)); err != nil {
		t.Fatal(err)
	}
	if got := st2.Watermark(); got[0] != 7 {
		t.Fatalf("watermark after reopen+register = %v", got)
	}
	// Beyond-end offsets are a divergent-history error, not a silent nil.
	if _, _, err := st2.TailFrom(0, 99, 0); !errors.Is(err, ErrBadOp) {
		t.Fatalf("TailFrom beyond end: %v", err)
	}
}

// TestTailFromIngestRoundTrip pins the replication pipeline at the store
// level: shipping every frame from one store into another through
// TailFrom/IngestFrame reproduces the full visible state, duplicates are
// skipped, and holes are refused.
func TestTailFromIngestRoundTrip(t *testing.T) {
	clk := newFakeClock()
	src := openDurable(t, t.TempDir(), WithDurableShards(4), WithGCInterval(0), withDurableClock(clk.Now))
	dst := openDurable(t, t.TempDir(), WithDurableShards(4), WithGCInterval(0), withDurableClock(clk.Now), WithReplica())

	var ids []string
	for i := 0; i < 20; i++ {
		reg := fakeRegistration(t, 2)
		if i%3 == 0 {
			reg.SetExpiry(clk.Now().Add(time.Duration(10+i) * time.Second))
		}
		id, err := src.Register(reg)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := src.SetTrust(ids[1], "alice", 1); err != nil {
		t.Fatal(err)
	}
	if err := src.Deregister(ids[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Touch(ids[0], time.Hour); err != nil {
		t.Fatal(err)
	}
	clk.Advance(40 * time.Second) // expires some of the TTL'd ones
	if _, err := src.SweepExpired(); err != nil {
		t.Fatal(err)
	}

	frames := streamAll(t, src, make(Watermark, 4))
	for _, f := range frames {
		if _, err := dst.IngestFrame(f); err != nil {
			t.Fatalf("IngestFrame(%d/%d): %v", f.Shard, f.Seq, err)
		}
	}
	if !reflect.DeepEqual(src.Watermark(), dst.Watermark()) {
		t.Fatalf("watermarks diverged: src %v, dst %v", src.Watermark(), dst.Watermark())
	}
	if src.Len() != dst.Len() {
		t.Fatalf("Len: src %d, dst %d", src.Len(), dst.Len())
	}
	for _, id := range ids {
		want, werr := src.Lookup(id)
		got, gerr := dst.Lookup(id)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("id %s: src err %v, dst err %v", id, werr, gerr)
		}
		if werr != nil {
			continue
		}
		if want.expiresAt != got.expiresAt {
			t.Fatalf("id %s: expiry %d vs %d", id, want.expiresAt, got.expiresAt)
		}
		if !reflect.DeepEqual(want.Grants(), got.Grants()) {
			t.Fatalf("id %s: grants %v vs %v", id, want.Grants(), got.Grants())
		}
		if !reflect.DeepEqual(want.keySet.EncodeHex(), got.keySet.EncodeHex()) {
			t.Fatalf("id %s: key sets diverged", id)
		}
	}

	// Duplicate delivery is a no-op.
	if applied, err := dst.IngestFrame(frames[0]); err != nil || applied {
		t.Fatalf("duplicate ingest: applied=%v err=%v", applied, err)
	}
	// A hole is refused loudly.
	hole := frames[len(frames)-1]
	hole.Seq += 2
	if _, err := dst.IngestFrame(hole); !errors.Is(err, ErrStreamGap) {
		t.Fatalf("gap ingest: %v", err)
	}
	// A frame whose id does not hash to its shard is corruption.
	bad := frames[0]
	bad.Shard = (bad.Shard + 1) % 4
	bad.Seq = dst.Watermark()[bad.Shard] + 1
	if _, err := dst.IngestFrame(bad); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("cross-shard ingest: %v", err)
	}
}

// TestReplicaGating: a replica store refuses local mutations and sweeps,
// and flips live on promotion.
func TestReplicaGating(t *testing.T) {
	st := openDurable(t, t.TempDir(), WithReplica())
	if _, err := st.Register(fakeRegistration(t, 1)); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("replica Register: %v", err)
	}
	if _, err := st.Touch("r1", time.Hour); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("replica Touch: %v", err)
	}
	if n, err := st.SweepExpired(); n != 0 || err != nil {
		t.Fatalf("replica sweep: %d, %v", n, err)
	}
	if !st.IsReplica() {
		t.Fatal("IsReplica = false")
	}
	st.SetReplica(false)
	if _, err := st.Register(fakeRegistration(t, 1)); err != nil {
		t.Fatalf("promoted Register: %v", err)
	}
}

// TestEpochRecord pins the leader/lease record's lifecycle: default
// state, persistence, reload.
func TestEpochRecord(t *testing.T) {
	dir := t.TempDir()
	st := openDurable(t, dir)
	epoch, leader, exists := st.EpochRecord()
	if epoch != 1 || !leader || exists {
		t.Fatalf("fresh dir epoch record = %d/%v/%v", epoch, leader, exists)
	}
	if err := st.SetEpoch(3, false); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openDurable(t, dir)
	epoch, leader, exists = st2.EpochRecord()
	if epoch != 3 || leader || !exists {
		t.Fatalf("reloaded epoch record = %d/%v/%v", epoch, leader, exists)
	}
	if err := st2.SetEpoch(0, true); !errors.Is(err, ErrBadOp) {
		t.Fatalf("SetEpoch(0): %v", err)
	}
}

// TestStreamSeqSpreadAcrossShards sanity-checks that the watermark is
// per-shard: offsets count records in the shard's own stream, not
// globally.
func TestStreamSeqSpreadAcrossShards(t *testing.T) {
	st := openDurable(t, t.TempDir(), WithDurableShards(4))
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := st.Register(fakeRegistration(t, 1)); err != nil {
			t.Fatal(err)
		}
	}
	wm := st.Watermark()
	if got := wm.Sum(); got != n {
		t.Fatalf("watermark sum = %d, want %d (%v)", got, n, wm)
	}
	seen := 0
	for i := range wm {
		frames, end, err := st.TailFrom(i, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if end != wm[i] {
			t.Fatalf("shard %d end = %d, watermark %d", i, end, wm[i])
		}
		for j, f := range frames {
			if f.Seq != uint64(j+1) {
				t.Fatalf("shard %d frame %d seq %d", i, j, f.Seq)
			}
		}
		seen += len(frames)
	}
	if seen != n {
		t.Fatalf("streamed %d frames, want %d", seen, n)
	}
}
