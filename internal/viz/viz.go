// Package viz renders road networks and cloaking regions as ASCII maps and
// SVG documents. It is the CLI substitute for the toolkit's Swing GUIs: the
// Anonymizer shows "several colored regions on the map" and the
// De-anonymizer "display[s] the reduced region over [the] road network".
package viz

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"github.com/reversecloak/reversecloak/internal/geom"
	"github.com/reversecloak/reversecloak/internal/roadnet"
)

// Errors returned by renderers.
var (
	// ErrBadCanvas reports unusable render dimensions.
	ErrBadCanvas = errors.New("viz: bad canvas")
)

// Layer is a set of segments drawn with one glyph (ASCII) or color (SVG).
// Later layers overdraw earlier ones.
type Layer struct {
	Name     string
	Segments []roadnet.SegmentID
	Glyph    rune   // ASCII rendering
	Color    string // SVG rendering, e.g. "#e4572e"
}

// Canvas is a w x h character raster.
type Canvas struct {
	w, h  int
	cells []rune
}

// NewCanvas allocates a canvas filled with spaces.
func NewCanvas(w, h int) (*Canvas, error) {
	if w < 2 || h < 2 || w > 4096 || h > 4096 {
		return nil, fmt.Errorf("%w: %dx%d", ErrBadCanvas, w, h)
	}
	c := &Canvas{w: w, h: h, cells: make([]rune, w*h)}
	for i := range c.cells {
		c.cells[i] = ' '
	}
	return c, nil
}

// set paints one cell if it is inside the canvas.
func (c *Canvas) set(x, y int, ch rune) {
	if x < 0 || x >= c.w || y < 0 || y >= c.h {
		return
	}
	c.cells[y*c.w+x] = ch
}

// drawLine draws a Bresenham line between raster coordinates.
func (c *Canvas) drawLine(x0, y0, x1, y1 int, ch rune) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		c.set(x0, y0, ch)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// String renders the canvas row by row, top first.
func (c *Canvas) String() string {
	var b strings.Builder
	b.Grow((c.w + 1) * c.h)
	for y := 0; y < c.h; y++ {
		b.WriteString(strings.TrimRight(string(c.cells[y*c.w:(y+1)*c.w]), " "))
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderASCII draws the full network with the base glyph '.', then each
// layer in order. The map is fit to the canvas preserving aspect ratio.
func RenderASCII(g *roadnet.Graph, w, h int, layers ...Layer) (string, error) {
	c, err := NewCanvas(w, h)
	if err != nil {
		return "", err
	}
	bounds := g.Bounds()
	if bounds.Empty() {
		return c.String(), nil
	}
	proj := newProjection(bounds, w, h)

	drawSeg := func(sid roadnet.SegmentID, ch rune) {
		a, b, err := g.Endpoints(sid)
		if err != nil {
			return
		}
		x0, y0 := proj.raster(a)
		x1, y1 := proj.raster(b)
		c.drawLine(x0, y0, x1, y1, ch)
	}
	for i := 0; i < g.NumSegments(); i++ {
		drawSeg(roadnet.SegmentID(i), '.')
	}
	for _, layer := range layers {
		glyph := layer.Glyph
		if glyph == 0 {
			glyph = '#'
		}
		for _, sid := range layer.Segments {
			drawSeg(sid, glyph)
		}
	}
	return c.String(), nil
}

// projection maps map coordinates onto the raster.
type projection struct {
	bounds geom.BBox
	scale  float64
	w, h   int
}

func newProjection(bounds geom.BBox, w, h int) projection {
	sx := float64(w-1) / nonZero(bounds.Width())
	sy := float64(h-1) / nonZero(bounds.Height())
	s := sx
	if sy < s {
		s = sy
	}
	return projection{bounds: bounds, scale: s, w: w, h: h}
}

func (p projection) raster(pt geom.Point) (int, int) {
	x := int((pt.X - p.bounds.Min.X) * p.scale)
	// Screen Y grows downward.
	y := int((p.bounds.Max.Y - pt.Y) * p.scale)
	return x, y
}

func nonZero(v float64) float64 {
	if v <= 0 {
		return 1
	}
	return v
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// WriteSVG emits the network and layers as a standalone SVG document.
func WriteSVG(w io.Writer, g *roadnet.Graph, width int, layers ...Layer) error {
	if width < 16 || width > 8192 {
		return fmt.Errorf("%w: svg width %d", ErrBadCanvas, width)
	}
	bounds := g.Bounds()
	scale := float64(width) / nonZero(bounds.Width())
	height := int(nonZero(bounds.Height()) * scale)
	if height < 1 {
		height = 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")

	line := func(sid roadnet.SegmentID, color string, strokeWidth float64) {
		a, bb, err := g.Endpoints(sid)
		if err != nil {
			return
		}
		x0 := (a.X - bounds.Min.X) * scale
		y0 := (bounds.Max.Y - a.Y) * scale
		x1 := (bb.X - bounds.Min.X) * scale
		y1 := (bounds.Max.Y - bb.Y) * scale
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
			x0, y0, x1, y1, color, strokeWidth)
	}
	for i := 0; i < g.NumSegments(); i++ {
		line(roadnet.SegmentID(i), "#cccccc", 1)
	}
	for _, layer := range layers {
		color := layer.Color
		if color == "" {
			color = "#e4572e"
		}
		for _, sid := range layer.Segments {
			line(sid, color, 3)
		}
	}
	b.WriteString("</svg>\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("viz: writing svg: %w", err)
	}
	return nil
}
