package viz

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/reversecloak/reversecloak/internal/mapgen"
	"github.com/reversecloak/reversecloak/internal/roadnet"
)

func grid(t *testing.T) *roadnet.Graph {
	t.Helper()
	g, err := mapgen.Grid(6, 6, 100)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRenderASCIIBaseMap(t *testing.T) {
	g := grid(t)
	out, err := RenderASCII(g, 40, 20)
	if err != nil {
		t.Fatalf("RenderASCII: %v", err)
	}
	if !strings.Contains(out, ".") {
		t.Error("base map glyph missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) > 20 {
		t.Errorf("rendered %d lines for height 20", len(lines))
	}
}

func TestRenderASCIILayersOverdraw(t *testing.T) {
	g := grid(t)
	out, err := RenderASCII(g, 60, 30, Layer{
		Name:     "region",
		Segments: []roadnet.SegmentID{0, 1, 2},
		Glyph:    '#',
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "#") {
		t.Error("layer glyph missing")
	}
	// Default glyph when none set.
	out2, err := RenderASCII(g, 60, 30, Layer{Segments: []roadnet.SegmentID{0}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, "#") {
		t.Error("default glyph missing")
	}
}

func TestRenderASCIIBadCanvas(t *testing.T) {
	g := grid(t)
	if _, err := RenderASCII(g, 1, 10); !errors.Is(err, ErrBadCanvas) {
		t.Errorf("tiny canvas err = %v", err)
	}
	if _, err := RenderASCII(g, 10000, 10); !errors.Is(err, ErrBadCanvas) {
		t.Errorf("huge canvas err = %v", err)
	}
}

func TestRenderASCIIEmptyGraph(t *testing.T) {
	g := roadnet.NewBuilder(0, 0).Build()
	out, err := RenderASCII(g, 10, 5)
	if err != nil {
		t.Fatalf("empty graph render: %v", err)
	}
	if strings.ContainsAny(out, ".#") {
		t.Error("empty graph should render blank")
	}
}

func TestCanvasDrawLineClipping(t *testing.T) {
	c, err := NewCanvas(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Line partially outside the canvas must not panic.
	c.drawLine(-5, -5, 15, 15, 'x')
	if !strings.Contains(c.String(), "x") {
		t.Error("clipped line should still draw inside portion")
	}
}

func TestWriteSVG(t *testing.T) {
	g := grid(t)
	var buf bytes.Buffer
	err := WriteSVG(&buf, g, 400, Layer{
		Segments: []roadnet.SegmentID{0, 1},
		Color:    "#ff0000",
	})
	if err != nil {
		t.Fatalf("WriteSVG: %v", err)
	}
	svg := buf.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Error("not an SVG document")
	}
	if !strings.Contains(svg, "#ff0000") {
		t.Error("layer color missing")
	}
	if !strings.Contains(svg, "#cccccc") {
		t.Error("base map color missing")
	}
	if strings.Count(svg, "<line") < g.NumSegments() {
		t.Errorf("only %d lines for %d segments", strings.Count(svg, "<line"), g.NumSegments())
	}
}

func TestWriteSVGDefaultsAndErrors(t *testing.T) {
	g := grid(t)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, g, 200, Layer{Segments: []roadnet.SegmentID{0}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#e4572e") {
		t.Error("default color missing")
	}
	if err := WriteSVG(&buf, g, 4); !errors.Is(err, ErrBadCanvas) {
		t.Errorf("tiny width err = %v", err)
	}
}
