package baseline

import (
	"errors"
	"testing"

	"github.com/reversecloak/reversecloak/internal/geom"
	"github.com/reversecloak/reversecloak/internal/mapgen"
	"github.com/reversecloak/reversecloak/internal/profile"
	"github.com/reversecloak/reversecloak/internal/roadnet"
)

func seed(b byte) []byte {
	s := make([]byte, 32)
	for i := range s {
		s[i] = b
	}
	return s
}

func grid(t *testing.T) *roadnet.Graph {
	t.Helper()
	g, err := mapgen.Grid(10, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func one(roadnet.SegmentID) int { return 1 }

func TestRandomExpansionMeetsRequirement(t *testing.T) {
	g := grid(t)
	region, err := RandomExpansion(g, one, 42, profile.Level{K: 8, L: 8}, seed(1))
	if err != nil {
		t.Fatalf("RandomExpansion: %v", err)
	}
	if len(region) < 8 {
		t.Errorf("region has %d segments, want >= 8", len(region))
	}
	if region[0] != 42 {
		t.Errorf("region must start at the user segment")
	}
	set := make(map[roadnet.SegmentID]bool)
	for _, s := range region {
		if set[s] {
			t.Fatalf("segment %d repeated", s)
		}
		set[s] = true
	}
	if !g.SegmentSetConnected(set) {
		t.Error("region must be connected")
	}
}

func TestRandomExpansionDeterministicPerSeed(t *testing.T) {
	g := grid(t)
	r1, err := RandomExpansion(g, one, 10, profile.Level{K: 6, L: 6}, seed(2))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RandomExpansion(g, one, 10, profile.Level{K: 6, L: 6}, seed(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("same seed must reproduce the expansion")
		}
	}
	r3, err := RandomExpansion(g, one, 10, profile.Level{K: 6, L: 6}, seed(3))
	if err != nil {
		t.Fatal(err)
	}
	same := len(r1) == len(r3)
	if same {
		for i := range r1 {
			if r1[i] != r3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds should generally differ")
	}
}

func TestRandomExpansionErrors(t *testing.T) {
	g := grid(t)
	if _, err := RandomExpansion(g, one, 9999, profile.Level{K: 2, L: 2}, seed(1)); !errors.Is(err, ErrFailed) {
		t.Errorf("unknown segment err = %v", err)
	}
	// Impossible tolerance.
	if _, err := RandomExpansion(g, one, 42, profile.Level{K: 50, L: 2, SigmaS: 120}, seed(1)); !errors.Is(err, ErrFailed) {
		t.Errorf("tight tolerance err = %v", err)
	}
}

func TestNaiveRoundTrip(t *testing.T) {
	g := grid(t)
	prof := profile.Profile{Levels: []profile.Level{
		{K: 4, L: 4},
		{K: 9, L: 9},
		{K: 16, L: 16},
	}}
	ks := [][]byte{seed(10), seed(11), seed(12)}
	p, err := NaiveAnonymize(g, one, 33, prof, ks)
	if err != nil {
		t.Fatalf("NaiveAnonymize: %v", err)
	}
	if len(p.Blobs) != 3 {
		t.Fatalf("blobs = %d, want 3", len(p.Blobs))
	}
	if p.Bytes() <= 0 {
		t.Error("payload must serialize")
	}
	keyMap := map[int][]byte{1: ks[0], 2: ks[1], 3: ks[2]}
	l0, err := NaiveDeanonymize(p, keyMap, 0)
	if err != nil {
		t.Fatalf("NaiveDeanonymize: %v", err)
	}
	if len(l0) != 1 || l0[0] != 33 {
		t.Errorf("L0 = %v, want [33]", l0)
	}
	// Partial peel.
	l2, err := NaiveDeanonymize(p, map[int][]byte{3: ks[2]}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(l2) >= len(p.Segments) || len(l2) < 9 {
		t.Errorf("L2 size = %d of %d", len(l2), len(p.Segments))
	}
}

func TestNaiveWrongKeyFails(t *testing.T) {
	g := grid(t)
	prof := profile.Profile{Levels: []profile.Level{{K: 5, L: 5}}}
	p, err := NaiveAnonymize(g, one, 12, prof, [][]byte{seed(20)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NaiveDeanonymize(p, map[int][]byte{1: seed(21)}, 0); !errors.Is(err, ErrBadPayload) {
		t.Errorf("wrong key err = %v", err)
	}
	if _, err := NaiveDeanonymize(p, map[int][]byte{}, 0); !errors.Is(err, ErrBadPayload) {
		t.Errorf("missing key err = %v", err)
	}
	if _, err := NaiveDeanonymize(p, nil, 9); !errors.Is(err, ErrBadPayload) {
		t.Errorf("bad level err = %v", err)
	}
}

func TestNaiveValidation(t *testing.T) {
	g := grid(t)
	if _, err := NaiveAnonymize(g, one, 12, profile.Profile{}, nil); !errors.Is(err, ErrFailed) {
		t.Errorf("empty profile err = %v", err)
	}
	prof := profile.Profile{Levels: []profile.Level{{K: 2, L: 2}}}
	if _, err := NaiveAnonymize(g, one, 12, prof, [][]byte{seed(1), seed(2)}); !errors.Is(err, ErrFailed) {
		t.Errorf("key count err = %v", err)
	}
}

func TestGridCloak(t *testing.T) {
	g := grid(t)
	box, users, err := GridCloak(g, one, geom.Point{X: 450, Y: 450}, 10, 100)
	if err != nil {
		t.Fatalf("GridCloak: %v", err)
	}
	if users < 10 {
		t.Errorf("covered %d users, want >= 10", users)
	}
	if box.Empty() {
		t.Error("box must not be empty")
	}
	// The box is centered on the query point.
	if c := box.Center(); c.X != 450 || c.Y != 450 {
		t.Errorf("center = %v", c)
	}
}

func TestGridCloakErrors(t *testing.T) {
	g := grid(t)
	if _, _, err := GridCloak(g, one, geom.Point{}, 0, 100); !errors.Is(err, ErrFailed) {
		t.Errorf("k=0 err = %v", err)
	}
	if _, _, err := GridCloak(g, one, geom.Point{}, 5, 0); !errors.Is(err, ErrFailed) {
		t.Errorf("initial=0 err = %v", err)
	}
	// Unreachable k exhausts the map.
	if _, _, err := GridCloak(g, one, geom.Point{X: 450, Y: 450}, 10000, 50); !errors.Is(err, ErrFailed) {
		t.Errorf("huge k err = %v", err)
	}
}
