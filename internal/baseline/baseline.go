// Package baseline implements the comparison schemes the benchmark harness
// measures ReverseCloak against:
//
//   - RandomExpansion: conventional single-level, unidirectional road-network
//     cloaking in the style of Wang et al. [9] — the same grow-until-(k,l)
//     expansion but with unkeyed randomness, so the cloak can never be
//     reduced. It prices the cost of reversibility.
//   - Naive: the strawman reversible scheme — ship the per-level segment
//     lists, encrypted under the level keys, alongside the region. It
//     de-anonymizes trivially but pays linear payload growth and reveals the
//     level sizes' structure to anyone, quantifying what ReverseCloak's
//     keyed in-place reversal saves.
//   - GridCloak: planar quadtree-style cell cloaking (PrivacyGrid/Casper
//     style [1],[7]) for the cross-family comparison: it ignores the road
//     network entirely and exposes a rectangle instead of road segments.
package baseline

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"github.com/reversecloak/reversecloak/internal/cloak"
	"github.com/reversecloak/reversecloak/internal/geom"
	"github.com/reversecloak/reversecloak/internal/prng"
	"github.com/reversecloak/reversecloak/internal/profile"
	"github.com/reversecloak/reversecloak/internal/roadnet"
)

// Errors returned by the baselines.
var (
	// ErrFailed reports that a baseline could not satisfy its requirement.
	ErrFailed = errors.New("baseline: cloaking failed")
	// ErrBadPayload reports a malformed naive-scheme payload.
	ErrBadPayload = errors.New("baseline: bad payload")
)

// RandomExpansion grows a connected segment region from the user's segment
// until it covers at least lv.K users and lv.L segments within the spatial
// tolerance, choosing uniformly among candidates. The result is a plain
// set: nothing about the insertion order can be recovered, which is exactly
// the irreversibility ReverseCloak removes.
func RandomExpansion(
	g *roadnet.Graph,
	density cloak.DensityFunc,
	user roadnet.SegmentID,
	lv profile.Level,
	seedKey []byte,
) ([]roadnet.SegmentID, error) {
	if !g.HasSegment(user) {
		return nil, fmt.Errorf("%w: unknown segment %d", ErrFailed, user)
	}
	cur := prng.NewCursor(prng.New(seedKey, "baseline/random-expansion"))
	members := map[roadnet.SegmentID]bool{user: true}
	order := []roadnet.SegmentID{user}
	users := density(user)
	box := g.SegmentBounds(user)

	for users < lv.K || len(order) < lv.L {
		// Candidates: adjacent, absent, within tolerance.
		var can []roadnet.SegmentID
		seen := map[roadnet.SegmentID]bool{}
		for m := range members {
			for _, nb := range g.Neighbors(m) {
				if members[nb] || seen[nb] {
					continue
				}
				seen[nb] = true
				if lv.SigmaS > 0 && box.Union(g.SegmentBounds(nb)).Diagonal() > lv.SigmaS {
					continue
				}
				can = append(can, nb)
			}
		}
		if len(can) == 0 {
			return nil, fmt.Errorf("%w: expansion stuck at %d segments / %d users",
				ErrFailed, len(order), users)
		}
		g.SortCanonical(can)
		next := can[cur.Intn(len(can))]
		members[next] = true
		order = append(order, next)
		users += density(next)
		box = box.Union(g.SegmentBounds(next))
	}
	return order, nil
}

// NaivePayload is the published artifact of the strawman reversible scheme:
// the full region plus one encrypted blob per level holding that level's
// segment list.
type NaivePayload struct {
	Segments []roadnet.SegmentID `json:"segments"`
	// Blobs[i] is the AES-GCM encryption of level (i+1)'s segment list.
	Blobs [][]byte `json:"blobs"`
}

// Bytes returns the serialized payload size, the metric compared against
// ReverseCloak's constant-size metadata in experiment E13.
func (p *NaivePayload) Bytes() int {
	raw, err := json.Marshal(p)
	if err != nil {
		return 0
	}
	return len(raw)
}

// NaiveAnonymize produces a multi-level cloak in the strawman scheme: it
// expands level by level exactly like RandomExpansion and encrypts each
// level's added-segment list under the level key.
func NaiveAnonymize(
	g *roadnet.Graph,
	density cloak.DensityFunc,
	user roadnet.SegmentID,
	prof profile.Profile,
	levelKeys [][]byte,
) (*NaivePayload, error) {
	if err := prof.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFailed, err)
	}
	if len(levelKeys) != len(prof.Levels) {
		return nil, fmt.Errorf("%w: %d keys for %d levels", ErrFailed,
			len(levelKeys), len(prof.Levels))
	}
	members := []roadnet.SegmentID{user}
	payload := &NaivePayload{}
	for li, lv := range prof.Levels {
		full, err := expandFrom(g, density, members, lv, levelKeys[li])
		if err != nil {
			return nil, err
		}
		added := full[len(members):]
		blob, err := sealSegments(levelKeys[li], li+1, added)
		if err != nil {
			return nil, err
		}
		payload.Blobs = append(payload.Blobs, blob)
		members = full
	}
	payload.Segments = append([]roadnet.SegmentID(nil), members...)
	return payload, nil
}

// NaiveDeanonymize strips levels down to toLevel by decrypting and removing
// each level's stored segment list.
func NaiveDeanonymize(p *NaivePayload, levelKeys map[int][]byte, toLevel int) ([]roadnet.SegmentID, error) {
	if toLevel < 0 || toLevel > len(p.Blobs) {
		return nil, fmt.Errorf("%w: level %d of %d", ErrBadPayload, toLevel, len(p.Blobs))
	}
	members := make(map[roadnet.SegmentID]bool, len(p.Segments))
	for _, s := range p.Segments {
		members[s] = true
	}
	for lv := len(p.Blobs); lv > toLevel; lv-- {
		key, ok := levelKeys[lv]
		if !ok {
			return nil, fmt.Errorf("%w: missing key for level %d", ErrBadPayload, lv)
		}
		added, err := openSegments(key, lv, p.Blobs[lv-1])
		if err != nil {
			return nil, err
		}
		for _, s := range added {
			if !members[s] {
				return nil, fmt.Errorf("%w: level %d names absent segment %d", ErrBadPayload, lv, s)
			}
			delete(members, s)
		}
	}
	out := make([]roadnet.SegmentID, 0, len(members))
	for s := range members {
		out = append(out, s)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}

// expandFrom grows members (copied) until lv is met, keyed-uniform choice.
func expandFrom(
	g *roadnet.Graph,
	density cloak.DensityFunc,
	members []roadnet.SegmentID,
	lv profile.Level,
	key []byte,
) ([]roadnet.SegmentID, error) {
	cur := prng.NewCursor(prng.New(key, "baseline/naive-expand"))
	set := make(map[roadnet.SegmentID]bool, len(members))
	order := append([]roadnet.SegmentID(nil), members...)
	users := 0
	var box geom.BBox
	for _, m := range members {
		set[m] = true
		users += density(m)
		box = box.Union(g.SegmentBounds(m))
	}
	for users < lv.K || len(order) < lv.L {
		var can []roadnet.SegmentID
		seen := map[roadnet.SegmentID]bool{}
		for m := range set {
			for _, nb := range g.Neighbors(m) {
				if set[nb] || seen[nb] {
					continue
				}
				seen[nb] = true
				if lv.SigmaS > 0 && box.Union(g.SegmentBounds(nb)).Diagonal() > lv.SigmaS {
					continue
				}
				can = append(can, nb)
			}
		}
		if len(can) == 0 {
			return nil, fmt.Errorf("%w: naive expansion stuck", ErrFailed)
		}
		g.SortCanonical(can)
		next := can[cur.Intn(len(can))]
		set[next] = true
		order = append(order, next)
		users += density(next)
		box = box.Union(g.SegmentBounds(next))
	}
	return order, nil
}

// sealSegments encrypts a segment list under an AES-GCM key derived from
// the level key.
func sealSegments(key []byte, level int, segs []roadnet.SegmentID) ([]byte, error) {
	block, err := aes.NewCipher(prng.Derive(key, "baseline/naive-aes")[:32])
	if err != nil {
		return nil, fmt.Errorf("baseline: cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("baseline: gcm: %w", err)
	}
	plain := make([]byte, 4*len(segs))
	for i, s := range segs {
		binary.BigEndian.PutUint32(plain[4*i:], uint32(s))
	}
	// Deterministic nonce derived from the level index is safe here: each
	// (key, level) pair encrypts exactly one message.
	nonce := prng.Derive(key, fmt.Sprintf("baseline/nonce/%d", level))[:gcm.NonceSize()]
	return gcm.Seal(nonce, nonce, plain, nil), nil
}

// openSegments reverses sealSegments.
func openSegments(key []byte, level int, blob []byte) ([]roadnet.SegmentID, error) {
	block, err := aes.NewCipher(prng.Derive(key, "baseline/naive-aes")[:32])
	if err != nil {
		return nil, fmt.Errorf("baseline: cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("baseline: gcm: %w", err)
	}
	if len(blob) < gcm.NonceSize() {
		return nil, fmt.Errorf("%w: blob too short", ErrBadPayload)
	}
	nonce, sealed := blob[:gcm.NonceSize()], blob[gcm.NonceSize():]
	plain, err := gcm.Open(nil, nonce, sealed, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	if len(plain)%4 != 0 {
		return nil, fmt.Errorf("%w: ragged plaintext", ErrBadPayload)
	}
	segs := make([]roadnet.SegmentID, len(plain)/4)
	for i := range segs {
		segs[i] = roadnet.SegmentID(binary.BigEndian.Uint32(plain[4*i:]))
	}
	return segs, nil
}

// GridCloak expands an axis-aligned box around the user's position until it
// covers at least k users (counted at segment midpoints), doubling the box
// each iteration like quadtree ascent. It returns the final box and the
// covered user count.
func GridCloak(
	g *roadnet.Graph,
	density cloak.DensityFunc,
	at geom.Point,
	k int,
	initial float64,
) (geom.BBox, int, error) {
	if k < 1 || initial <= 0 {
		return geom.BBox{}, 0, fmt.Errorf("%w: k=%d initial=%v", ErrFailed, k, initial)
	}
	half := initial / 2
	limit := g.Bounds().Diagonal()
	for {
		box := geom.NewBBox(
			geom.Point{X: at.X - half, Y: at.Y - half},
			geom.Point{X: at.X + half, Y: at.Y + half},
		)
		users := 0
		for _, sid := range g.SegmentsWithin(box) {
			if box.Contains(g.Midpoint(sid)) {
				users += density(sid)
			}
		}
		if users >= k {
			return box, users, nil
		}
		if half*2 > limit {
			return geom.BBox{}, users, fmt.Errorf("%w: grid cloak exhausted map at %d users", ErrFailed, users)
		}
		half *= 2
	}
}
