// Package metrics provides the statistics and table rendering used by the
// experiment harness: streaming moment accumulation (Welford), percentile
// snapshots, and fixed-width table output matching the rows the paper's
// evaluation reports.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Stats accumulates a stream of float64 samples with O(1) memory using
// Welford's online algorithm. The zero value is ready to use.
type Stats struct {
	n          int
	mean, m2   float64
	min, max   float64
	hasExtrema bool
}

// Add records one sample.
func (s *Stats) Add(x float64) {
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	if !s.hasExtrema || x < s.min {
		s.min = x
	}
	if !s.hasExtrema || x > s.max {
		s.max = x
	}
	s.hasExtrema = true
}

// AddDuration records a duration sample in seconds.
func (s *Stats) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the sample count.
func (s *Stats) N() int { return s.n }

// Mean returns the sample mean (0 with no samples).
func (s *Stats) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (s *Stats) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Stats) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest sample (0 with no samples).
func (s *Stats) Min() float64 {
	if !s.hasExtrema {
		return 0
	}
	return s.min
}

// Max returns the largest sample (0 with no samples).
func (s *Stats) Max() float64 {
	if !s.hasExtrema {
		return 0
	}
	return s.max
}

// Quantiles computes exact quantiles over a retained sample slice. It is a
// helper for the harness, which keeps its (small) sample sets in memory.
func Quantiles(samples []float64, qs ...float64) []float64 {
	if len(samples) == 0 {
		return make([]float64, len(qs))
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q <= 0 {
			out[i] = sorted[0]
			continue
		}
		if q >= 1 {
			out[i] = sorted[len(sorted)-1]
			continue
		}
		pos := q * float64(len(sorted)-1)
		lo := int(pos)
		frac := pos - float64(lo)
		if lo+1 < len(sorted) {
			out[i] = sorted[lo]*(1-frac) + sorted[lo+1]*frac
		} else {
			out[i] = sorted[lo]
		}
	}
	return out
}

// Table renders fixed-width experiment tables.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Title returns the table's title.
func (t *Table) Title() string { return t.title }

// Headers returns a copy of the column headers.
func (t *Table) Headers() []string {
	return append([]string(nil), t.headers...)
}

// Rows returns a copy of the data rows.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no title).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.headers))
	for i, h := range t.headers {
		cells[i] = esc(h)
	}
	b.WriteString(strings.Join(cells, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		for i, c := range row {
			cells[i] = esc(c)
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatDuration renders a duration in the unit that keeps 3 significant
// digits readable (µs / ms / s).
func FormatDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// FormatBytes renders a byte count with binary units.
func FormatBytes(n int) string {
	switch {
	case n < 1<<10:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	}
}
