package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestStatsBasics(t *testing.T) {
	var s Stats
	if s.N() != 0 || s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("zero-value stats should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Sample std of this classic dataset is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.Std()-want) > 1e-9 {
		t.Errorf("Std = %v, want %v", s.Std(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("extrema = %v..%v", s.Min(), s.Max())
	}
}

func TestStatsSingleSample(t *testing.T) {
	var s Stats
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Var() != 0 || s.Min() != 3.5 || s.Max() != 3.5 {
		t.Error("single-sample stats wrong")
	}
}

func TestStatsNegativeValues(t *testing.T) {
	var s Stats
	s.Add(-10)
	s.Add(10)
	if s.Mean() != 0 || s.Min() != -10 || s.Max() != 10 {
		t.Error("negative handling wrong")
	}
}

func TestAddDuration(t *testing.T) {
	var s Stats
	s.AddDuration(250 * time.Millisecond)
	if s.Mean() != 0.25 {
		t.Errorf("Mean = %v, want 0.25", s.Mean())
	}
}

func TestQuantiles(t *testing.T) {
	samples := []float64{5, 1, 3, 2, 4}
	qs := Quantiles(samples, 0, 0.5, 1)
	if qs[0] != 1 || qs[1] != 3 || qs[2] != 5 {
		t.Errorf("quantiles = %v", qs)
	}
	// Interpolated quantile.
	q := Quantiles([]float64{0, 10}, 0.25)
	if q[0] != 2.5 {
		t.Errorf("q25 = %v, want 2.5", q[0])
	}
	empty := Quantiles(nil, 0.5)
	if empty[0] != 0 {
		t.Error("empty quantiles should be zero")
	}
	// Input must not be mutated.
	if samples[0] != 5 {
		t.Error("Quantiles mutated its input")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("E8: k sweep", "k", "time(ms)", "segments")
	tab.AddRow("10", "1.5", "12")
	tab.AddRow("20", "3.25", "24")
	tab.AddRow("40") // short row padded
	out := tab.String()
	if !strings.Contains(out, "E8: k sweep") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "k ") || !strings.Contains(out, "3.25") {
		t.Errorf("table misrendered:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	if tab.NumRows() != 3 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.AddRow("1", `va"l,ue`)
	csv := tab.CSV()
	if !strings.Contains(csv, `"va""l,ue"`) {
		t.Errorf("CSV escaping wrong: %s", csv)
	}
	if strings.Contains(csv, "t\n") && strings.HasPrefix(csv, "t") {
		t.Error("CSV should not include the title")
	}
}

func TestFormatDuration(t *testing.T) {
	tests := []struct {
		d    time.Duration
		want string
	}{
		{500 * time.Nanosecond, "0.5µs"},
		{42 * time.Microsecond, "42.0µs"},
		{3500 * time.Microsecond, "3.50ms"},
		{2500 * time.Millisecond, "2.500s"},
	}
	for _, tt := range tests {
		if got := FormatDuration(tt.d); got != tt.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", tt.d, got, tt.want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	tests := []struct {
		n    int
		want string
	}{
		{512, "512B"},
		{2048, "2.0KiB"},
		{3 << 20, "3.00MiB"},
	}
	for _, tt := range tests {
		if got := FormatBytes(tt.n); got != tt.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}

func TestTableAccessors(t *testing.T) {
	tab := NewTable("demo", "a", "b")
	tab.AddRow("1", "2")
	tab.AddRow("3") // padded
	if tab.Title() != "demo" {
		t.Errorf("Title = %q", tab.Title())
	}
	h := tab.Headers()
	if len(h) != 2 || h[0] != "a" || h[1] != "b" {
		t.Errorf("Headers = %v", h)
	}
	rows := tab.Rows()
	if len(rows) != 2 || rows[0][1] != "2" || rows[1][1] != "" {
		t.Errorf("Rows = %v", rows)
	}
	// The returned slices are copies: mutating them must not touch the table.
	h[0] = "x"
	rows[0][0] = "x"
	if tab.Headers()[0] != "a" || tab.Rows()[0][0] != "1" {
		t.Error("accessors leaked internal state")
	}
}
