// Package query implements anonymous query processing over cloaked
// regions, the consumer side of location cloaking (Casper-style query
// processing [7] and road-network services [9] in the paper's references).
//
// An LBS provider that receives a cloaking region instead of an exact
// location must answer for every possible user position inside the region,
// returning a candidate superset that the client filters locally. The ratio
// between the candidate result and the exact result is the query-processing
// overhead that privacy buys — experiment E12 measures how it scales with
// the privacy level.
package query

import (
	"errors"
	"fmt"
	"sort"

	"github.com/reversecloak/reversecloak/internal/geom"
	"github.com/reversecloak/reversecloak/internal/prng"
	"github.com/reversecloak/reversecloak/internal/roadnet"
)

// Errors returned by the query processor.
var (
	// ErrBadQuery reports invalid query parameters.
	ErrBadQuery = errors.New("query: bad query")
)

// POI is a point of interest served by the LBS.
type POI struct {
	ID   int        `json:"id"`
	At   geom.Point `json:"at"`
	Name string     `json:"name,omitempty"`
}

// Index answers range queries over a POI set on a road network. It is
// immutable after construction and safe for concurrent readers.
type Index struct {
	g    *roadnet.Graph
	pois []POI
}

// NewIndex builds an index over the given POIs.
func NewIndex(g *roadnet.Graph, pois []POI) *Index {
	cp := make([]POI, len(pois))
	copy(cp, pois)
	return &Index{g: g, pois: cp}
}

// NumPOIs returns the number of indexed POIs.
func (ix *Index) NumPOIs() int { return len(ix.pois) }

// RangeExact returns the POIs within distance d of the exact point,
// sorted by ID. This is the non-private baseline answer.
func (ix *Index) RangeExact(at geom.Point, d float64) ([]POI, error) {
	if d < 0 {
		return nil, fmt.Errorf("%w: negative radius", ErrBadQuery)
	}
	var out []POI
	for _, p := range ix.pois {
		if p.At.Dist(at) <= d {
			out = append(out, p)
		}
	}
	return out, nil
}

// RangeCloaked returns the POIs within distance d of *any* point of the
// cloaked region (given as its segment set): the candidate superset the LBS
// must return when it only knows the region. Results are sorted by ID.
func (ix *Index) RangeCloaked(region []roadnet.SegmentID, d float64) ([]POI, error) {
	if d < 0 {
		return nil, fmt.Errorf("%w: negative radius", ErrBadQuery)
	}
	if len(region) == 0 {
		return nil, fmt.Errorf("%w: empty region", ErrBadQuery)
	}
	type geomSeg struct{ a, b geom.Point }
	segs := make([]geomSeg, 0, len(region))
	for _, sid := range region {
		a, b, err := ix.g.Endpoints(sid)
		if err != nil {
			return nil, fmt.Errorf("query: region segment %d: %w", sid, err)
		}
		segs = append(segs, geomSeg{a, b})
	}
	var out []POI
	for _, p := range ix.pois {
		for _, s := range segs {
			if geom.SegmentDist(p.At, s.a, s.b) <= d {
				out = append(out, p)
				break
			}
		}
	}
	return out, nil
}

// Overhead quantifies the privacy cost of a cloaked query: the ratio of
// candidate results to exact results (1.0 = free privacy; higher =
// more filtering work for the client). An exact result of zero yields the
// candidate count itself to keep the metric finite.
func Overhead(exact, cloaked int) float64 {
	if exact == 0 {
		return float64(cloaked)
	}
	return float64(cloaked) / float64(exact)
}

// GeneratePOIs places n POIs uniformly along the road network (by segment,
// then uniform along the segment), deterministically from the seed.
func GeneratePOIs(g *roadnet.Graph, n int, seedKey []byte) ([]POI, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative count", ErrBadQuery)
	}
	if g.NumSegments() == 0 && n > 0 {
		return nil, fmt.Errorf("%w: empty graph", ErrBadQuery)
	}
	cur := prng.NewCursor(prng.New(seedKey, "query/pois"))
	out := make([]POI, 0, n)
	for i := 0; i < n; i++ {
		sid := roadnet.SegmentID(cur.Intn(g.NumSegments()))
		a, b, err := g.Endpoints(sid)
		if err != nil {
			return nil, fmt.Errorf("query: placing poi %d: %w", i, err)
		}
		t := cur.Float64()
		out = append(out, POI{ID: i, At: a.Lerp(b, t), Name: fmt.Sprintf("poi-%d", i)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}
