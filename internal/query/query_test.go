package query

import (
	"errors"
	"testing"

	"github.com/reversecloak/reversecloak/internal/geom"
	"github.com/reversecloak/reversecloak/internal/mapgen"
	"github.com/reversecloak/reversecloak/internal/roadnet"
)

func seed(b byte) []byte {
	s := make([]byte, 32)
	for i := range s {
		s[i] = b
	}
	return s
}

func testIndex(t *testing.T) (*Index, *roadnet.Graph) {
	t.Helper()
	g, err := mapgen.Grid(10, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	pois, err := GeneratePOIs(g, 200, seed(1))
	if err != nil {
		t.Fatal(err)
	}
	return NewIndex(g, pois), g
}

func TestGeneratePOIs(t *testing.T) {
	ix, g := testIndex(t)
	if ix.NumPOIs() != 200 {
		t.Fatalf("pois = %d, want 200", ix.NumPOIs())
	}
	// All POIs lie within the map bounds.
	for _, p := range ix.pois {
		if !g.Bounds().Contains(p.At) {
			t.Errorf("poi %d at %v outside map", p.ID, p.At)
		}
	}
	// Deterministic per seed.
	again, err := GeneratePOIs(g, 200, seed(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if again[i].At != ix.pois[i].At {
			t.Fatal("POI generation must be deterministic")
		}
	}
	if _, err := GeneratePOIs(g, -1, seed(1)); !errors.Is(err, ErrBadQuery) {
		t.Errorf("negative count err = %v", err)
	}
}

func TestRangeExact(t *testing.T) {
	ix, _ := testIndex(t)
	at := geom.Point{X: 450, Y: 450}
	got, err := ix.RangeExact(at, 150)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range got {
		if p.At.Dist(at) > 150 {
			t.Errorf("poi %d at distance %v > 150", p.ID, p.At.Dist(at))
		}
	}
	// Complement check: everything excluded is genuinely out of range.
	in := make(map[int]bool)
	for _, p := range got {
		in[p.ID] = true
	}
	for _, p := range ix.pois {
		if !in[p.ID] && p.At.Dist(at) <= 150 {
			t.Errorf("poi %d within range but missing", p.ID)
		}
	}
	if _, err := ix.RangeExact(at, -1); !errors.Is(err, ErrBadQuery) {
		t.Errorf("negative radius err = %v", err)
	}
}

func TestRangeCloakedIsSuperset(t *testing.T) {
	ix, g := testIndex(t)
	// A small region around the center of the grid.
	center, err := g.NearestSegment(geom.Point{X: 450, Y: 450})
	if err != nil {
		t.Fatal(err)
	}
	region := append([]roadnet.SegmentID{center}, g.Neighbors(center)...)

	cloaked, err := ix.RangeCloaked(region, 150)
	if err != nil {
		t.Fatal(err)
	}
	// The exact answer from any point on the region must be contained in
	// the cloaked answer; test with both segment endpoints.
	a, b, err := g.Endpoints(center)
	if err != nil {
		t.Fatal(err)
	}
	inCloaked := make(map[int]bool)
	for _, p := range cloaked {
		inCloaked[p.ID] = true
	}
	for _, pt := range []geom.Point{a, b, geom.Midpoint(a, b)} {
		exact, err := ix.RangeExact(pt, 150)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range exact {
			if !inCloaked[p.ID] {
				t.Errorf("exact result poi %d missing from cloaked candidates", p.ID)
			}
		}
	}
}

func TestRangeCloakedErrors(t *testing.T) {
	ix, _ := testIndex(t)
	if _, err := ix.RangeCloaked(nil, 100); !errors.Is(err, ErrBadQuery) {
		t.Errorf("empty region err = %v", err)
	}
	if _, err := ix.RangeCloaked([]roadnet.SegmentID{0}, -5); !errors.Is(err, ErrBadQuery) {
		t.Errorf("negative radius err = %v", err)
	}
	if _, err := ix.RangeCloaked([]roadnet.SegmentID{9999}, 10); err == nil {
		t.Error("unknown segment should fail")
	}
}

func TestOverhead(t *testing.T) {
	if Overhead(10, 30) != 3 {
		t.Error("overhead 30/10 should be 3")
	}
	if Overhead(0, 7) != 7 {
		t.Error("zero exact should return candidate count")
	}
	if Overhead(5, 5) != 1 {
		t.Error("equal should be 1")
	}
}

func TestOverheadGrowsWithRegion(t *testing.T) {
	ix, g := testIndex(t)
	center, err := g.NearestSegment(geom.Point{X: 450, Y: 450})
	if err != nil {
		t.Fatal(err)
	}
	small := []roadnet.SegmentID{center}
	large := append([]roadnet.SegmentID{center}, g.Neighbors(center)...)
	for _, nb := range g.Neighbors(center) {
		large = append(large, g.Neighbors(nb)...)
	}
	cSmall, err := ix.RangeCloaked(small, 120)
	if err != nil {
		t.Fatal(err)
	}
	cLarge, err := ix.RangeCloaked(large, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(cLarge) < len(cSmall) {
		t.Errorf("larger region returned fewer candidates (%d < %d)", len(cLarge), len(cSmall))
	}
}
