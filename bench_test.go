// Benchmarks: one testing.B entry point per evaluation artifact (see the
// experiment index in DESIGN.md and the recorded results in
// EXPERIMENTS.md). The printed tables come from cmd/reversecloak-bench;
// these benchmarks measure the underlying operations with -benchmem.
package reversecloak_test

import (
	"fmt"
	"testing"

	rc "github.com/reversecloak/reversecloak"
	"github.com/reversecloak/reversecloak/internal/baseline"
	"github.com/reversecloak/reversecloak/internal/cloak"
	"github.com/reversecloak/reversecloak/internal/mapgen"
	"github.com/reversecloak/reversecloak/internal/profile"
	"github.com/reversecloak/reversecloak/internal/query"
	"github.com/reversecloak/reversecloak/internal/roadnet"
	"github.com/reversecloak/reversecloak/internal/trace"
)

// benchSeed keys every benchmark deterministically.
func benchSeed() []byte { return []byte("reversecloak-bench-seed-2017-001") }

// benchEnv carries the shared benchmark fixtures.
type benchEnv struct {
	g    *roadnet.Graph
	sim  *trace.Simulation
	rge  *cloak.Engine
	rple *cloak.Engine
	pre  *cloak.Preassignment
}

// newBenchEnv builds a quarter-scale Atlanta workload.
func newBenchEnv(b *testing.B) *benchEnv {
	b.Helper()
	g, err := mapgen.Generate(mapgen.Config{
		Junctions: 1745, Segments: 2297, Spacing: 150, Seed: benchSeed(),
	})
	if err != nil {
		b.Fatalf("map: %v", err)
	}
	sim, err := trace.New(g, trace.Config{Cars: 2500, Seed: benchSeed()})
	if err != nil {
		b.Fatalf("trace: %v", err)
	}
	rge, err := cloak.NewEngine(g, sim.UsersOn, cloak.Options{Algorithm: cloak.RGE})
	if err != nil {
		b.Fatalf("rge: %v", err)
	}
	pre, err := cloak.NewPreassignment(g, cloak.DefaultTransitionListLength)
	if err != nil {
		b.Fatalf("pre: %v", err)
	}
	rple, err := cloak.NewEngine(g, sim.UsersOn, cloak.Options{Algorithm: cloak.RPLE, Pre: pre})
	if err != nil {
		b.Fatalf("rple: %v", err)
	}
	return &benchEnv{g: g, sim: sim, rge: rge, rple: rple, pre: pre}
}

// benchKeys derives deterministic level keys.
func benchKeys(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		k := make([]byte, 32)
		for j := range k {
			k[j] = byte(37*i + j)
		}
		out[i] = k
	}
	return out
}

// kProfile is a single-level profile with the given k.
func kProfile(k int) profile.Profile {
	l := k / 3
	if l < 2 {
		l = 2
	}
	return profile.Profile{Levels: []profile.Level{{K: k, L: l}}}
}

// anonymizeLoop drives an anonymize benchmark over rotating users.
func anonymizeLoop(b *testing.B, env *benchEnv, eng *cloak.Engine, prof profile.Profile) {
	b.Helper()
	keys := benchKeys(len(prof.Levels))
	users := []roadnet.SegmentID{50, 300, 700, 1100, 1500, 1900}
	b.ResetTimer()
	done := 0
	for i := 0; b.Loop(); i++ {
		u := users[i%len(users)]
		if _, _, err := eng.Anonymize(cloak.Request{UserSegment: u, Profile: prof, Keys: keys}); err == nil {
			done++
		}
	}
	if done == 0 {
		b.Fatal("no cloak succeeded")
	}
}

// BenchmarkE5AnonymizeRGE / RPLE: the paper's headline trade-off, k=40.
func BenchmarkE5AnonymizeRGE(b *testing.B) {
	env := newBenchEnv(b)
	anonymizeLoop(b, env, env.rge, kProfile(40))
}

func BenchmarkE5AnonymizeRPLE(b *testing.B) {
	env := newBenchEnv(b)
	anonymizeLoop(b, env, env.rple, kProfile(40))
}

// BenchmarkE5PreassignmentBuild: RPLE's precomputation cost (its memory is
// reported by the harness table).
func BenchmarkE5PreassignmentBuild(b *testing.B) {
	env := newBenchEnv(b)
	b.ResetTimer()
	for b.Loop() {
		if _, err := cloak.NewPreassignment(env.g, cloak.DefaultTransitionListLength); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6Levels: multi-level anonymization cost by level count.
func BenchmarkE6Levels(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("N=%d", n+1), func(b *testing.B) {
			env := newBenchEnv(b)
			prof := profile.Profile{Levels: make([]profile.Level, n)}
			k := 10
			for i := range prof.Levels {
				l := k / 3
				if l < 2 {
					l = 2
				}
				prof.Levels[i] = profile.Level{K: k, L: l}
				k *= 2
			}
			anonymizeLoop(b, env, env.rge, prof)
		})
	}
}

// BenchmarkE7Deanonymize: full peel of a 3-level cloak.
func BenchmarkE7Deanonymize(b *testing.B) {
	for _, algo := range []cloak.Algorithm{cloak.RGE, cloak.RPLE} {
		b.Run(algo.String(), func(b *testing.B) {
			env := newBenchEnv(b)
			eng := env.rge
			if algo == cloak.RPLE {
				eng = env.rple
			}
			prof := profile.Profile{Levels: []profile.Level{
				{K: 10, L: 3}, {K: 20, L: 6}, {K: 40, L: 13},
			}}
			keys := benchKeys(3)
			cr, _, err := eng.Anonymize(cloak.Request{UserSegment: 700, Profile: prof, Keys: keys})
			if err != nil {
				b.Fatalf("cloak: %v", err)
			}
			km := map[int][]byte{1: keys[0], 2: keys[1], 3: keys[2]}
			b.ResetTimer()
			for b.Loop() {
				if _, err := eng.Deanonymize(cr, km, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8K: anonymization cost versus delta_k.
func BenchmarkE8K(b *testing.B) {
	for _, k := range []int{10, 40, 160} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			env := newBenchEnv(b)
			anonymizeLoop(b, env, env.rge, kProfile(k))
		})
	}
}

// BenchmarkE9ToleranceBounded: cloaking under a tight spatial tolerance
// (includes the failure/retry path).
func BenchmarkE9ToleranceBounded(b *testing.B) {
	env := newBenchEnv(b)
	prof := profile.Profile{Levels: []profile.Level{{K: 40, L: 13, SigmaS: 2500}}}
	anonymizeLoop(b, env, env.rge, prof)
}

// BenchmarkE10TraceGeneration: the GTMobiSim-substitute workload cost.
func BenchmarkE10TraceGeneration(b *testing.B) {
	g, err := mapgen.Generate(mapgen.Config{
		Junctions: 1745, Segments: 2297, Spacing: 150, Seed: benchSeed(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for b.Loop() {
		if _, err := trace.New(g, trace.Config{Cars: 2500, Seed: benchSeed()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10MapGeneration: the synthetic Atlanta substrate.
func BenchmarkE10MapGeneration(b *testing.B) {
	for b.Loop() {
		if _, err := mapgen.AtlantaNW(benchSeed()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11AdversaryEnumerate: the keyless attacker's search cost per
// guessed key.
func BenchmarkE11AdversaryEnumerate(b *testing.B) {
	env := newBenchEnv(b)
	keys := benchKeys(1)
	cr, _, err := env.rge.Anonymize(cloak.Request{UserSegment: 700, Profile: kProfile(20), Keys: keys})
	if err != nil {
		b.Fatal(err)
	}
	guess := benchKeys(2)[1]
	b.ResetTimer()
	for b.Loop() {
		if _, err := cloak.EnumerateReversals(env.g, cloak.RGE, nil, cr.Segments,
			cr.Levels[0].Steps, guess, 1, cr.Levels[0].Salt, 0, 128); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12QueryCloaked: anonymous range query over a cloaked region.
func BenchmarkE12QueryCloaked(b *testing.B) {
	env := newBenchEnv(b)
	pois, err := query.GeneratePOIs(env.g, 500, benchSeed())
	if err != nil {
		b.Fatal(err)
	}
	ix := query.NewIndex(env.g, pois)
	cr, _, err := env.rge.Anonymize(cloak.Request{UserSegment: 700, Profile: kProfile(40), Keys: benchKeys(1)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for b.Loop() {
		if _, err := ix.RangeCloaked(cr.Segments, 400); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13RandomExpansion: the non-reversible baseline.
func BenchmarkE13RandomExpansion(b *testing.B) {
	env := newBenchEnv(b)
	b.ResetTimer()
	for b.Loop() {
		if _, err := baseline.RandomExpansion(env.g, env.sim.UsersOn, 700,
			profile.Level{K: 40, L: 13}, benchSeed()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13NaiveAnonymize: the encrypted-list strawman.
func BenchmarkE13NaiveAnonymize(b *testing.B) {
	env := newBenchEnv(b)
	prof := profile.Profile{Levels: []profile.Level{
		{K: 10, L: 3}, {K: 20, L: 6}, {K: 40, L: 13},
	}}
	keys := benchKeys(3)
	b.ResetTimer()
	for b.Loop() {
		if _, err := baseline.NaiveAnonymize(env.g, env.sim.UsersOn, 700, prof, keys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFacadeRoundTrip exercises the public API end to end.
func BenchmarkFacadeRoundTrip(b *testing.B) {
	g, err := rc.GridMap(16, 16, 120)
	if err != nil {
		b.Fatal(err)
	}
	engine, err := rc.NewRGEEngine(g, func(rc.SegmentID) int { return 2 })
	if err != nil {
		b.Fatal(err)
	}
	keys := benchKeys(2)
	prof := rc.Profile{Levels: []rc.Level{{K: 8, L: 4}, {K: 16, L: 8}}}
	km := map[int][]byte{1: keys[0], 2: keys[1]}
	b.ResetTimer()
	for b.Loop() {
		cr, _, err := engine.Anonymize(rc.Request{UserSegment: 100, Profile: prof, Keys: keys})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := engine.Deanonymize(cr, km, 0); err != nil {
			b.Fatal(err)
		}
	}
}
