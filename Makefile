# Local verification mirrors .github/workflows/ci.yml: the same commands,
# so green locally means green in CI.

GO ?= go

.PHONY: all build test test-full race bench bench-smoke staticcheck govulncheck fmt fmt-check vet ci linkcheck examples fuzz-smoke e2e e2e-repl e2e-tenants

all: build test

build:
	$(GO) build ./...

# Fast suite, what CI runs on every push (experiment harness skipped).
test:
	$(GO) test -short ./...

# Full suite including the ~30s experiment harness (tier-1 verify).
test-full:
	$(GO) test ./...

race:
	$(GO) test -race -short ./internal/anonymizer ./internal/anonymizer/repl ./internal/anonymizer/tenant ./internal/cloak

# Full experiment harness + service throughput benchmarks (the nightly job).
bench:
	$(GO) run ./cmd/reversecloak-bench -json bench-results.json
	$(GO) test -run xxx -bench 'BenchmarkServerThroughput|BenchmarkAnonymizeBatch' -benchtime 2000x ./internal/anonymizer

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Static analysis beyond vet (the CI lint job's pinned version; needs
# network on first run to fetch the tool).
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2023.1.7 ./...

# Known-vulnerability scan over the module graph and the stdlib calls we
# reach (non-blocking in CI: an advisory published overnight must not
# turn unrelated pushes red; needs network to fetch the tool and the
# vuln DB).
govulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

# Durability experiments only, tiny iteration counts (the CI bench-smoke
# job): fails fast on WAL / fsync / group-commit regressions.
bench-smoke:
	$(GO) run ./cmd/reversecloak-bench -only E17,E18,E22,E23 -trials 2 -junctions 400 -segments 540

# Short native-fuzz pass over the byte-facing decoders (the CI
# fuzz-smoke step): corrupt input must never panic or over-read, and
# the JSON and binary wire codecs must decode identically.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeWALRecord$$' -fuzztime 15s ./internal/anonymizer
	$(GO) test -run '^$$' -fuzz '^FuzzReadArchive$$' -fuzztime 15s ./internal/anonymizer
	$(GO) test -run '^$$' -fuzz '^FuzzCodecRoundTrip$$' -fuzztime 15s ./internal/anonymizer
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeBinaryFrame$$' -fuzztime 15s ./internal/anonymizer

# End-to-end data-dir lifecycle: serve -> loadgen -> hot backup ->
# restore -> reshard -> byte-identical dumps (the CI e2e-backup job).
e2e:
	sh scripts/e2e-backup.sh

# End-to-end replication: leader -> follower bootstrap -> catch-up ->
# leader kill -> promote -> fenced stale leader -> byte-identical dumps,
# with an incremental-backup leg (the CI e2e-repl job).
e2e-repl:
	sh scripts/e2e-repl.sh

# End-to-end multi-tenant plane: auth gate -> capability denials ->
# rate-limit throttling -> operator backup -> live revocation ->
# /metrics agreement (the CI e2e-tenants job).
e2e-tenants:
	sh scripts/e2e-tenants.sh

# Verify that every relative markdown link resolves.
linkcheck:
	sh scripts/check-links.sh

# Build and run every example program in -short mode (the CI docs job).
examples:
	$(GO) build ./examples/...
	@for d in examples/*/; do echo "== $$d"; $(GO) run "./$$d" -short || exit 1; done

# Everything the blocking CI jobs run.
ci: fmt-check vet build test race linkcheck examples fuzz-smoke e2e e2e-repl e2e-tenants
