package reversecloak_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	rc "github.com/reversecloak/reversecloak"
)

func seed(b byte) []byte {
	s := make([]byte, 32)
	for i := range s {
		s[i] = b
	}
	return s
}

// TestFacadeQuickstart runs the package-documentation quick start end to
// end through the public API only.
func TestFacadeQuickstart(t *testing.T) {
	g, err := rc.GenerateMap(rc.MapConfig{Junctions: 400, Segments: 527, Seed: seed(1)})
	if err != nil {
		t.Fatalf("GenerateMap: %v", err)
	}
	sim, err := rc.NewSimulation(g, rc.WorkloadConfig{Cars: 3000, Seed: seed(2)})
	if err != nil {
		t.Fatalf("NewSimulation: %v", err)
	}
	engine, err := rc.NewRGEEngine(g, sim.UsersOn)
	if err != nil {
		t.Fatalf("NewRGEEngine: %v", err)
	}
	ks, err := rc.AutoGenerateKeys(3)
	if err != nil {
		t.Fatalf("AutoGenerateKeys: %v", err)
	}
	user := rc.SegmentID(100)
	region, _, err := engine.Anonymize(rc.Request{
		UserSegment: user,
		Profile:     rc.DefaultProfile(),
		Keys:        ks.All(),
	})
	if errors.Is(err, rc.ErrCloakFailed) {
		// The random workload can make a particular segment infeasible;
		// pick another one.
		user = rc.SegmentID(200)
		region, _, err = engine.Anonymize(rc.Request{
			UserSegment: user,
			Profile:     rc.DefaultProfile(),
			Keys:        ks.All(),
		})
	}
	if err != nil {
		t.Fatalf("Anonymize: %v", err)
	}
	if !region.Contains(user) {
		t.Error("region must contain the user")
	}

	grant, err := ks.Grant(1)
	if err != nil {
		t.Fatalf("Grant: %v", err)
	}
	finer, err := engine.Deanonymize(region, grant, 1)
	if err != nil {
		t.Fatalf("Deanonymize: %v", err)
	}
	if finer.PrivacyLevel() != 1 {
		t.Errorf("privacy level = %d, want 1", finer.PrivacyLevel())
	}
	if len(finer.Segments) >= len(region.Segments) {
		t.Error("peeling must shrink the region")
	}

	full, err := ks.Grant(0)
	if err != nil {
		t.Fatal(err)
	}
	l0, err := engine.Deanonymize(region, full, 0)
	if err != nil {
		t.Fatalf("full Deanonymize: %v", err)
	}
	if len(l0.Segments) != 1 || l0.Segments[0] != user {
		t.Errorf("L0 = %v, want [%d]", l0.Segments, user)
	}
}

func TestFacadeRPLE(t *testing.T) {
	g, err := rc.GridMap(10, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := rc.NewRPLEEngine(g, func(rc.SegmentID) int { return 2 }, 0)
	if err != nil {
		t.Fatalf("NewRPLEEngine: %v", err)
	}
	ks, err := rc.AutoGenerateKeys(2)
	if err != nil {
		t.Fatal(err)
	}
	prof := rc.UniformProfile(2, 6, 3, 0)
	region, _, err := engine.Anonymize(rc.Request{UserSegment: 40, Profile: prof, Keys: ks.All()})
	if err != nil {
		t.Fatalf("Anonymize: %v", err)
	}
	grant, err := ks.Grant(0)
	if err != nil {
		t.Fatal(err)
	}
	l0, err := engine.Deanonymize(region, grant, 0)
	if err != nil {
		t.Fatalf("Deanonymize: %v", err)
	}
	if len(l0.Segments) != 1 || l0.Segments[0] != 40 {
		t.Errorf("L0 = %v", l0.Segments)
	}
}

func TestFacadeFigureOne(t *testing.T) {
	g, s18, err := rc.FigureOneMap()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSegments() != 24 {
		t.Errorf("segments = %d", g.NumSegments())
	}
	if seg, err := g.Segment(s18); err != nil || seg.Name != "s18" {
		t.Errorf("s18 lookup = %+v, %v", seg, err)
	}
}

func TestFacadeVisualization(t *testing.T) {
	g, err := rc.GridMap(6, 6, 100)
	if err != nil {
		t.Fatal(err)
	}
	art, err := rc.RenderASCII(g, 40, 20, rc.RenderLayer{
		Segments: []rc.SegmentID{0, 1}, Glyph: '#',
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(art, "#") {
		t.Error("layer missing from ASCII render")
	}
	var buf bytes.Buffer
	if err := rc.WriteSVG(&buf, g, 300, rc.RenderLayer{
		Segments: []rc.SegmentID{0}, Color: "#112233",
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#112233") {
		t.Error("layer missing from SVG")
	}
}

func TestFacadePOIQueries(t *testing.T) {
	g, err := rc.GridMap(8, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	pois, err := rc.GeneratePOIs(g, 50, seed(3))
	if err != nil {
		t.Fatal(err)
	}
	ix := rc.NewPOIIndex(g, pois)
	if ix.NumPOIs() != 50 {
		t.Errorf("pois = %d", ix.NumPOIs())
	}
	got, err := ix.RangeCloaked([]rc.SegmentID{0, 1, 2}, 200)
	if err != nil {
		t.Fatal(err)
	}
	_ = got // size depends on placement; the call shape is what's under test
}

func TestFacadeServerFlow(t *testing.T) {
	g, err := rc.GridMap(10, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := rc.NewRGEEngine(g, func(rc.SegmentID) int { return 2 })
	if err != nil {
		t.Fatal(err)
	}
	srv, err := rc.NewServer(map[rc.Algorithm]*rc.Engine{rc.RGE: engine})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	c, err := rc.DialServer(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	id, region, err := c.Anonymize(42, rc.UniformProfile(2, 6, 3, 0), "RGE")
	if err != nil {
		t.Fatalf("Anonymize: %v", err)
	}
	if id == "" || region == nil {
		t.Fatal("missing registration")
	}
}

func TestKeysHexRoundTripThroughFacade(t *testing.T) {
	ks, err := rc.AutoGenerateKeys(2)
	if err != nil {
		t.Fatal(err)
	}
	ks2, err := rc.KeysFromHex(ks.EncodeHex())
	if err != nil {
		t.Fatal(err)
	}
	if ks2.Levels() != 2 {
		t.Errorf("levels = %d", ks2.Levels())
	}
}
