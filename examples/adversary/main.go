// Command adversary plays the attacker against ReverseCloak: it receives a
// published cloaked region, knows the road network, the algorithm, every
// public metadata field — everything except the keys — and tries to reverse
// the cloak. The demo shows (1) guessed keys either fail outright or
// recover a wrong segment, and (2) the number of removal chains consistent
// with random keys, i.e. the ambiguity that keyless reversal faces.
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"os"

	rc "github.com/reversecloak/reversecloak"
	"github.com/reversecloak/reversecloak/internal/cloak"
)

// -short shrinks the attacks so CI can run the example quickly.
var short = flag.Bool("short", false, "fewer guesses and enumerations for CI")

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adversary:", err)
		os.Exit(1)
	}
}

func run() error {
	g, err := rc.GridMap(12, 12, 100)
	if err != nil {
		return fmt.Errorf("generating map: %w", err)
	}
	engine, err := rc.NewRGEEngine(g, func(rc.SegmentID) int { return 1 })
	if err != nil {
		return fmt.Errorf("building engine: %w", err)
	}

	prof := rc.Profile{Levels: []rc.Level{{K: 12, L: 12}}}
	ks, err := rc.AutoGenerateKeys(1)
	if err != nil {
		return err
	}
	user := rc.SegmentID(130)
	region, _, err := engine.Anonymize(rc.Request{UserSegment: user, Profile: prof, Keys: ks.All()})
	if err != nil {
		return fmt.Errorf("anonymizing: %w", err)
	}
	fmt.Printf("published: %d-segment region, level metadata steps=%d salt=%d\n",
		len(region.Segments), region.Levels[0].Steps, region.Levels[0].Salt)
	fmt.Printf("secret: user is on segment %d\n\n", user)

	guesses, enums, chainCap := 20, 3, 512
	if *short {
		guesses, enums, chainCap = 5, 1, 128
	}

	// Attack 1: brute-force guessed keys.
	fmt.Printf("attack 1: de-anonymize under %d guessed keys\n", guesses)
	hits, errs := 0, 0
	for i := 0; i < guesses; i++ {
		guess := make([]byte, 32)
		if _, err := rand.Read(guess); err != nil {
			return err
		}
		got, err := engine.Deanonymize(region, map[int][]byte{1: guess}, 0)
		if err != nil {
			errs++
			continue
		}
		if len(got.Segments) == 1 && got.Segments[0] == user {
			hits++
		}
	}
	fmt.Printf("  %d/%d guesses failed to produce any chain, %d/%d found the true segment\n\n",
		errs, guesses, hits, guesses)

	// Attack 2: enumerate every removal chain consistent with a random key.
	fmt.Println("attack 2: chain ambiguity under random keys")
	for i := 0; i < enums; i++ {
		guess := make([]byte, 32)
		if _, err := rand.Read(guess); err != nil {
			return err
		}
		chains, err := cloak.EnumerateReversals(g, cloak.RGE, nil,
			region.Segments, region.Levels[0].Steps, guess, 1,
			region.Levels[0].Salt, region.Levels[0].SigmaS, chainCap)
		if err != nil {
			return fmt.Errorf("enumerating: %w", err)
		}
		fmt.Printf("  random key %d: %d consistent chain(s) — ", i+1, len(chains))
		switch {
		case len(chains) == 0:
			fmt.Println("key rejected outright")
		default:
			fmt.Println("no way to tell which (if any) is real without the key")
		}
	}

	// Ground truth: the real key deterministically yields the one true chain.
	full, err := ks.Grant(0)
	if err != nil {
		return err
	}
	l0, err := engine.Deanonymize(region, full, 0)
	if err != nil {
		return fmt.Errorf("true-key dean: %w", err)
	}
	fmt.Printf("\nwith the real key: recovered segment %d (correct: %v)\n",
		l0.Segments[0], l0.Segments[0] == user)
	return nil
}
