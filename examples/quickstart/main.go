// Command quickstart is the smallest end-to-end ReverseCloak program: build
// a map and a workload, anonymize one user at three privacy levels, then
// de-anonymize level by level with the corresponding keys.
package main

import (
	"flag"
	"fmt"
	"os"

	rc "github.com/reversecloak/reversecloak"
)

// -short shrinks the workload so CI can run the example quickly.
var short = flag.Bool("short", false, "smaller workload for CI")

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := []byte("reversecloak-quickstart-seed-001")

	// A ~400-junction road network with Atlanta-like density and a
	// 2,000-car Gaussian workload over it.
	g, err := rc.SmallMap(seed)
	if err != nil {
		return fmt.Errorf("generating map: %w", err)
	}
	cars := 2000
	if *short {
		cars = 600
	}
	sim, err := rc.NewSimulation(g, rc.WorkloadConfig{Cars: cars, Seed: seed})
	if err != nil {
		return fmt.Errorf("generating workload: %w", err)
	}
	fmt.Printf("map: %d junctions, %d segments; workload: %d cars\n",
		g.NumJunctions(), g.NumSegments(), sim.NumCars())

	engine, err := rc.NewRGEEngine(g, sim.UsersOn)
	if err != nil {
		return fmt.Errorf("building engine: %w", err)
	}

	// Three privacy levels with doubling k (the toolkit's default setting)
	// and auto-generated keys.
	prof := rc.DefaultProfile()
	ks, err := rc.AutoGenerateKeys(len(prof.Levels))
	if err != nil {
		return fmt.Errorf("generating keys: %w", err)
	}

	// Cloak the user on segment 100.
	user := rc.SegmentID(100)
	region, _, err := engine.Anonymize(rc.Request{
		UserSegment: user,
		Profile:     prof,
		Keys:        ks.All(),
	})
	if err != nil {
		return fmt.Errorf("anonymizing: %w", err)
	}
	fmt.Printf("published region: %d segments at privacy level L%d\n",
		len(region.Segments), region.PrivacyLevel())

	// Peel level by level.
	for toLevel := region.PrivacyLevel() - 1; toLevel >= 0; toLevel-- {
		grant, err := ks.Grant(toLevel)
		if err != nil {
			return fmt.Errorf("granting keys: %w", err)
		}
		finer, err := engine.Deanonymize(region, grant, toLevel)
		if err != nil {
			return fmt.Errorf("de-anonymizing to L%d: %w", toLevel, err)
		}
		fmt.Printf("with keys %v: region reduced to %d segments (L%d)\n",
			grantedLevels(grant), len(finer.Segments), toLevel)
	}

	fmt.Println("quickstart complete: the L0 region above is exactly the user's segment")
	return nil
}

// grantedLevels lists which level keys a grant contains.
func grantedLevels(grant map[int][]byte) []int {
	var out []int
	for lv := 1; lv <= 16; lv++ {
		if _, ok := grant[lv]; ok {
			out = append(out, lv)
		}
	}
	return out
}
