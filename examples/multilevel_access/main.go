// Command multilevel_access demonstrates the paper's access-controlled
// scenario end to end over the trusted anonymization server: a location
// data owner cloaks her position once, and three data requesters with
// different trust degrees — an emergency doctor, a taxi dispatcher and an
// advertiser — each see her location at a different privacy level from the
// same published region.
package main

import (
	"flag"
	"fmt"
	"os"

	rc "github.com/reversecloak/reversecloak"
)

// -short shrinks the workload so CI can run the example quickly.
var short = flag.Bool("short", false, "smaller workload for CI")

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multilevel_access:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := []byte("reversecloak-multilevel-access-1")

	g, err := rc.SmallMap(seed)
	if err != nil {
		return fmt.Errorf("generating map: %w", err)
	}
	cars := 2500
	if *short {
		cars = 800
	}
	sim, err := rc.NewSimulation(g, rc.WorkloadConfig{Cars: cars, Seed: seed})
	if err != nil {
		return fmt.Errorf("generating workload: %w", err)
	}
	engine, err := rc.NewRGEEngine(g, sim.UsersOn)
	if err != nil {
		return fmt.Errorf("building engine: %w", err)
	}

	// The trusted anonymization server holds the map, densities and keys.
	srv, err := rc.NewServer(map[rc.Algorithm]*rc.Engine{rc.RGE: engine})
	if err != nil {
		return fmt.Errorf("building server: %w", err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("starting server: %w", err)
	}
	defer func() { _ = srv.Close() }()
	fmt.Println("trusted anonymization server at", addr)

	// --- Data owner side -------------------------------------------------
	owner, err := rc.DialServer(addr.String())
	if err != nil {
		return fmt.Errorf("owner dialing: %w", err)
	}
	defer func() { _ = owner.Close() }()

	user := rc.SegmentID(150)
	regionID, region, err := owner.Anonymize(user, rc.DefaultProfile(), "RGE")
	if err != nil {
		return fmt.Errorf("owner anonymizing: %w", err)
	}
	fmt.Printf("owner: cloaked segment %d into %d segments, registration %s\n",
		user, len(region.Segments), regionID)

	// Personal access-control profile: trust degrees decide key grants.
	grants := map[string]int{
		"emergency-doctor": 0, // may recover the exact segment
		"taxi-dispatcher":  1, // may reduce to level 1
		"advertiser":       3, // sees only the public region
	}
	for requester, level := range grants {
		if err := owner.SetTrust(regionID, requester, level); err != nil {
			return fmt.Errorf("owner granting %s: %w", requester, err)
		}
	}

	// --- Data requester side ---------------------------------------------
	// Requesters see the same published region; their keys differ.
	for _, requester := range []string{"emergency-doctor", "taxi-dispatcher", "advertiser"} {
		conn, err := rc.DialServer(addr.String())
		if err != nil {
			return fmt.Errorf("%s dialing: %w", requester, err)
		}
		published, levels, err := conn.GetRegion(regionID)
		if err != nil {
			_ = conn.Close()
			return fmt.Errorf("%s fetching region: %w", requester, err)
		}
		keys, err := conn.RequestKeys(regionID, requester)
		if err != nil {
			_ = conn.Close()
			return fmt.Errorf("%s fetching keys: %w", requester, err)
		}
		_ = conn.Close()

		// De-anonymization is local: lowest reachable level given the keys.
		reachable := levels
		for lv := levels; lv >= 0; lv-- {
			if _, ok := keys[lv+1]; lv < levels && !ok {
				break
			}
			reachable = lv
		}
		finer, err := engine.Deanonymize(published, keys, reachable)
		if err != nil {
			return fmt.Errorf("%s de-anonymizing: %w", requester, err)
		}
		fmt.Printf("%-17s holds %d key(s) -> level L%d, %d segment(s)",
			requester, len(keys), reachable, len(finer.Segments))
		if len(finer.Segments) == 1 {
			fmt.Printf("  [exact location: segment %d]", finer.Segments[0])
		}
		fmt.Println()
	}
	return nil
}
