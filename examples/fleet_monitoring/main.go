// Command fleet_monitoring cloaks a moving vehicle continuously: a courier
// fleet reports positions every tick; the operations center may see fine
// locations (level 1) while the customer-facing tracker only ever sees the
// coarse region (level 2). Each tick re-anonymizes against the live
// per-segment densities of the whole fleet.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	rc "github.com/reversecloak/reversecloak"
)

// -short shrinks the simulation so CI can run the example quickly.
var short = flag.Bool("short", false, "fewer ticks for CI")

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fleet_monitoring:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := []byte("reversecloak-fleet-monitoring-01")

	g, err := rc.GridMap(16, 16, 120)
	if err != nil {
		return fmt.Errorf("generating map: %w", err)
	}
	// A moving fleet: routed cars that advance every tick.
	sim, err := rc.NewSimulation(g, rc.WorkloadConfig{
		Cars:    600,
		Routing: true,
		Seed:    seed,
	})
	if err != nil {
		return fmt.Errorf("generating fleet: %w", err)
	}
	engine, err := rc.NewRPLEEngine(g, sim.UsersOn, 0)
	if err != nil {
		return fmt.Errorf("building engine: %w", err)
	}
	fmt.Printf("fleet of %d vehicles on a %d-segment network (RPLE cloaking)\n",
		sim.NumCars(), g.NumSegments())

	prof := rc.Profile{Levels: []rc.Level{
		{K: 8, L: 4, SigmaS: 1200},  // L1: operations center
		{K: 20, L: 8, SigmaS: 2400}, // L2: customer tracker
	}}

	ticks := 5
	if *short {
		ticks = 2
	}
	const trackedVehicle = 7
	for tick := 0; tick < ticks; tick++ {
		car, err := sim.Car(trackedVehicle)
		if err != nil {
			return fmt.Errorf("tracking vehicle: %w", err)
		}

		// Fresh keys per report: old reports stay reducible only by whoever
		// archived their keys.
		ks, err := rc.AutoGenerateKeys(len(prof.Levels))
		if err != nil {
			return fmt.Errorf("generating keys: %w", err)
		}
		region, _, err := engine.Anonymize(rc.Request{
			UserSegment: car.Segment,
			Profile:     prof,
			Keys:        ks.All(),
		})
		switch {
		case errors.Is(err, rc.ErrCloakFailed):
			fmt.Printf("t=%3.0fs vehicle %d: cloaking infeasible this tick (sparse area)\n",
				sim.Time(), trackedVehicle)
		case err != nil:
			return fmt.Errorf("anonymizing at tick %d: %w", tick, err)
		default:
			opsGrant, err := ks.Grant(1)
			if err != nil {
				return err
			}
			opsView, err := engine.Deanonymize(region, opsGrant, 1)
			if err != nil {
				return fmt.Errorf("ops view: %w", err)
			}
			fmt.Printf("t=%3.0fs vehicle %d on segment %-4d | customer sees %2d segments | ops sees %2d segments\n",
				sim.Time(), trackedVehicle, car.Segment,
				len(region.Segments), len(opsView.Segments))
		}

		// Fleet moves for 30 simulated seconds.
		if err := sim.Step(30); err != nil {
			return fmt.Errorf("advancing fleet: %w", err)
		}
	}
	return nil
}
