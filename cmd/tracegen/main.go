// Command tracegen generates a GTMobiSim-style mobile workload over a road
// network and writes the per-segment occupancy histogram as JSON: "10,000
// cars randomly generated along the roads based on Gaussian distribution
// ... route selection is based on shortest path routing."
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	rc "github.com/reversecloak/reversecloak"
)

// output is the serialized workload snapshot.
type output struct {
	Cars      int   `json:"cars"`
	Segments  int   `json:"segments"`
	Steps     int   `json:"steps"`
	Occupancy []int `json:"occupancy"`
}

func main() {
	mapFile := flag.String("map", "", "road network JSON (default: built-in small preset)")
	cars := flag.Int("cars", 10000, "number of cars (paper preset: 10000)")
	hotspots := flag.Int("hotspots", 5, "Gaussian mixture components")
	steps := flag.Int("steps", 0, "simulation steps of 10s each before the snapshot (requires routing)")
	seedStr := flag.String("seed", "reversecloak-default-trace-seed1", "generation seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	if err := run(*mapFile, *cars, *hotspots, *steps, *seedStr, *out); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(mapFile string, cars, hotspots, steps int, seedStr, out string) error {
	seed := []byte(seedStr)
	var (
		g   *rc.Graph
		err error
	)
	if mapFile == "" {
		g, err = rc.SmallMap(seed)
	} else {
		f, ferr := os.Open(mapFile)
		if ferr != nil {
			return fmt.Errorf("opening map: %w", ferr)
		}
		defer func() { _ = f.Close() }()
		g, err = rc.ReadMap(f)
	}
	if err != nil {
		return fmt.Errorf("loading map: %w", err)
	}

	sim, err := rc.NewSimulation(g, rc.WorkloadConfig{
		Cars:     cars,
		Hotspots: hotspots,
		Routing:  steps > 0,
		Seed:     seed,
	})
	if err != nil {
		return fmt.Errorf("generating workload: %w", err)
	}
	for i := 0; i < steps; i++ {
		if err := sim.Step(10); err != nil {
			return fmt.Errorf("stepping: %w", err)
		}
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return fmt.Errorf("creating %s: %w", out, err)
		}
		defer func() { _ = f.Close() }()
		w = f
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(output{
		Cars:      sim.NumCars(),
		Segments:  g.NumSegments(),
		Steps:     steps,
		Occupancy: sim.Counts(),
	}); err != nil {
		return fmt.Errorf("writing: %w", err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d cars over %d segments\n", sim.NumCars(), g.NumSegments())
	return nil
}
