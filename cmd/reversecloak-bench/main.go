// Command reversecloak-bench regenerates every evaluation artifact: the
// experiment tables E5..E13 indexed in DESIGN.md, over the deterministic
// synthetic Atlanta workload. Results for the committed default seed are
// recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/reversecloak/reversecloak/internal/bench"
)

func main() {
	var (
		seedStr   = flag.String("seed", "reversecloak-bench-seed-2017-001", "experiment seed")
		junctions = flag.Int("junctions", 0, "network junctions (default quarter-scale Atlanta)")
		segments  = flag.Int("segments", 0, "network segments")
		cars      = flag.Int("cars", 0, "workload size (default ~1.09/segment)")
		trials    = flag.Int("trials", 0, "trials per table cell (default 15)")
		fullE10   = flag.Bool("full-e10", false, "run E10 at the paper's full 6979/9187/10000 scale")
		paper     = flag.Bool("paper-scale", false, "run EVERYTHING at full Atlanta scale (slow)")
		jsonOut   = flag.String("json", "", "also write machine-readable results to this file")
		only      = flag.String("only", "", "run only these comma-separated experiment IDs (e.g. E17,E18)")
	)
	flag.Parse()

	opts := bench.Options{
		Seed:      []byte(*seedStr),
		Junctions: *junctions,
		Segments:  *segments,
		Cars:      *cars,
		Trials:    *trials,
	}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			if id = strings.TrimSpace(id); id != "" {
				opts.Only = append(opts.Only, id)
			}
		}
	}
	if *paper {
		opts.Junctions = 6979
		opts.Segments = 9187
		opts.Cars = 10000
	}
	if *jsonOut == "" {
		if err := bench.RunAll(os.Stdout, opts, *fullE10 || *paper); err != nil {
			fmt.Fprintln(os.Stderr, "reversecloak-bench:", err)
			os.Exit(1)
		}
		return
	}
	f, err := os.Create(*jsonOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reversecloak-bench:", err)
		os.Exit(1)
	}
	err = bench.RunAllJSON(os.Stdout, f, opts, *fullE10 || *paper)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "reversecloak-bench:", err)
		os.Exit(1)
	}
	fmt.Println("machine-readable results written to", *jsonOut)
}
