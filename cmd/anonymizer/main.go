// Command anonymizer is the CLI counterpart of the toolkit's 'Anonymizer'
// GUI. The location data owner specifies the anonymization parameters — the
// number of anonymity levels, k per level, the spatial tolerance and the
// access keys ("Auto key generation" with -auto-keys) — anonymizes her
// location, inspects the colored multi-level regions over the road network,
// and writes the publishable region plus the secret keys to files
// ("upload" to the LBS provider, keys kept local).
//
// Besides the default one-shot cloaking mode, subcommands exercise and
// operate the service layer:
//
//	anonymizer serve   -addr :7080 -map small      # run the trusted server
//	anonymizer serve   -addr :7081 -data-dir d2 -replicate-from :7080
//	anonymizer serve   -addr :7080 -tenants tenants.json -admin-addr :9090
//	anonymizer serve   -addr :7080 -data-dir d1 -master-key-file keys.json
//	anonymizer loadgen -addr :7080 -clients 1,4,16,64
//	anonymizer loadgen -addr :7080 -tenant fleet -token SECRET
//	anonymizer backup  -addr :7080 -out backup.rca # hot backup a live server
//	anonymizer backup  -addr :7080 -since 12,0,7 -out delta.rca
//	anonymizer restore -in backup.rca -data-dir d2 # seed a fresh data dir
//	anonymizer restore -apply -in delta.rca -data-dir d2
//	anonymizer reshard -src d2 -dst d3 -shards 4   # offline shard migration
//	anonymizer dump    -data-dir d3                # deterministic state dump
//	anonymizer status  -addr :7081                 # replication role and lag
//	anonymizer promote -addr :7081                 # fail over to a follower
//
// loadgen sweeps the number of concurrent clients against a running server
// and reports req/s per step, demonstrating how the sharded, pipelined
// service scales with cores (with -read-addr it aims reads at a follower).
// backup/restore/reshard/dump are the data-dir lifecycle tools (each of
// restore/reshard/dump takes -master-key-file when the directory holds
// derived-key registrations), and serve -replicate-from / status /
// promote are the replication tools. With serve -master-key-file the
// server derives per-registration cloak keys from the epoch'd master
// keyring instead of journaling them (rotation is an edit to the file,
// hot-reloaded every -master-key-reload).
// With serve -tenants the server authenticates and rate-limits every
// connection (loadgen/backup/status/promote then take -tenant/-token),
// and -admin-addr exposes /metrics, /healthz, /readyz and pprof on a
// separate listener; docs/OPERATIONS.md is the runbook for all of it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	rc "github.com/reversecloak/reversecloak"
)

// regionFile is the published artifact written by -region-out.
type regionFile struct {
	Region *rc.CloakedRegion `json:"region"`
	// MapSeed lets the de-anonymizer rebuild the identical map.
	MapSeed string `json:"map_seed"`
	// Preset records which map generator built the graph.
	MapPreset string `json:"map_preset"`
	Algorithm string `json:"algorithm"`
	// ListLength is RPLE's T (0 for RGE).
	ListLength int `json:"list_length,omitempty"`
}

// keysFile is the secret artifact written by -keys-out.
type keysFile struct {
	Keys []string `json:"keys_hex"`
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			if err := runServe(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "anonymizer serve:", err)
				os.Exit(1)
			}
			return
		case "loadgen":
			if err := runLoadgen(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "anonymizer loadgen:", err)
				os.Exit(1)
			}
			return
		case "backup":
			if err := runBackup(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "anonymizer backup:", err)
				os.Exit(1)
			}
			return
		case "restore":
			if err := runRestore(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "anonymizer restore:", err)
				os.Exit(1)
			}
			return
		case "reshard":
			if err := runReshard(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "anonymizer reshard:", err)
				os.Exit(1)
			}
			return
		case "dump":
			if err := runDump(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "anonymizer dump:", err)
				os.Exit(1)
			}
			return
		case "promote":
			if err := runPromote(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "anonymizer promote:", err)
				os.Exit(1)
			}
			return
		case "status":
			if err := runStatus(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "anonymizer status:", err)
				os.Exit(1)
			}
			return
		}
	}
	var (
		preset    = flag.String("map", "small", "map preset: small, atlanta, grid, figure1")
		seedStr   = flag.String("seed", "reversecloak-default-map-seed-01", "map+workload seed")
		cars      = flag.Int("cars", 2000, "workload size")
		userSeg   = flag.Int("user", 100, "user's segment ID")
		algorithm = flag.String("algorithm", "RGE", "RGE or RPLE")
		levels    = flag.Int("levels", 3, "number of keyed privacy levels")
		kList     = flag.String("k", "", "comma-separated k per level (default doubling from 10)")
		lList     = flag.String("l", "", "comma-separated l per level (default k/3)")
		sigma     = flag.Float64("sigma", 0, "base spatial tolerance in meters (0 = unbounded)")
		autoKeys  = flag.Bool("auto-keys", true, "auto-generate access keys")
		keysIn    = flag.String("keys", "", "hex keys file to reuse instead of -auto-keys")
		regionOut = flag.String("region-out", "", "write published region JSON here")
		keysOut   = flag.String("keys-out", "", "write secret keys JSON here")
		render    = flag.Bool("render", true, "render the cloak levels as ASCII")
		width     = flag.Int("width", 78, "render width")
		height    = flag.Int("height", 30, "render height")
	)
	flag.Parse()

	if err := run(args{
		preset: *preset, seedStr: *seedStr, cars: *cars, userSeg: *userSeg,
		algorithm: *algorithm, levels: *levels, kList: *kList, lList: *lList,
		sigma: *sigma, autoKeys: *autoKeys, keysIn: *keysIn,
		regionOut: *regionOut, keysOut: *keysOut,
		render: *render, width: *width, height: *height,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "anonymizer:", err)
		os.Exit(1)
	}
}

// args bundles the flag values.
type args struct {
	preset, seedStr, algorithm, kList, lList, keysIn, regionOut, keysOut string
	cars, userSeg, levels, width, height                                 int
	sigma                                                                float64
	autoKeys, render                                                     bool
}

func run(a args) error {
	g, err := loadMap(a.preset, []byte(a.seedStr))
	if err != nil {
		return err
	}
	sim, err := rc.NewSimulation(g, rc.WorkloadConfig{Cars: a.cars, Seed: []byte(a.seedStr)})
	if err != nil {
		return fmt.Errorf("generating workload: %w", err)
	}

	const rpleT = 16
	var engine *rc.Engine
	listLength := 0
	switch strings.ToUpper(a.algorithm) {
	case "RGE":
		engine, err = rc.NewRGEEngine(g, sim.UsersOn)
	case "RPLE":
		engine, err = rc.NewRPLEEngine(g, sim.UsersOn, rpleT)
		listLength = rpleT
	default:
		return fmt.Errorf("unknown algorithm %q", a.algorithm)
	}
	if err != nil {
		return fmt.Errorf("building engine: %w", err)
	}

	prof, err := buildProfile(a.levels, a.kList, a.lList, a.sigma)
	if err != nil {
		return err
	}

	var ks *rc.KeySet
	switch {
	case a.keysIn != "":
		raw, err := os.ReadFile(a.keysIn)
		if err != nil {
			return fmt.Errorf("reading keys: %w", err)
		}
		var kf keysFile
		if err := json.Unmarshal(raw, &kf); err != nil {
			return fmt.Errorf("parsing keys: %w", err)
		}
		ks, err = rc.KeysFromHex(kf.Keys)
		if err != nil {
			return fmt.Errorf("decoding keys: %w", err)
		}
	case a.autoKeys:
		ks, err = rc.AutoGenerateKeys(len(prof.Levels))
		if err != nil {
			return fmt.Errorf("auto key generation: %w", err)
		}
	default:
		return fmt.Errorf("provide -keys or enable -auto-keys")
	}

	region, _, err := engine.Anonymize(rc.Request{
		UserSegment: rc.SegmentID(a.userSeg),
		Profile:     prof,
		Keys:        ks.All(),
	})
	if err != nil {
		return fmt.Errorf("anonymizing: %w", err)
	}
	fmt.Printf("anonymized segment %d: %d segments at level L%d (%s)\n",
		a.userSeg, len(region.Segments), region.PrivacyLevel(), a.algorithm)
	for i, lm := range region.Levels {
		fmt.Printf("  L%d: +%d segments (salt %d, sigma %.0f)\n", i+1, lm.Steps, lm.Salt, lm.SigmaS)
	}

	if a.render {
		layers, err := levelLayers(engine, region, ks, rc.SegmentID(a.userSeg))
		if err != nil {
			return err
		}
		art, err := rc.RenderASCII(g, a.width, a.height, layers...)
		if err != nil {
			return fmt.Errorf("rendering: %w", err)
		}
		fmt.Println(art)
	}

	if a.regionOut != "" {
		rf := regionFile{
			Region: region, MapSeed: a.seedStr, MapPreset: a.preset,
			Algorithm: strings.ToUpper(a.algorithm), ListLength: listLength,
		}
		if err := writeJSON(a.regionOut, rf); err != nil {
			return err
		}
		fmt.Println("published region written to", a.regionOut)
	}
	if a.keysOut != "" {
		if err := writeJSON(a.keysOut, keysFile{Keys: ks.EncodeHex()}); err != nil {
			return err
		}
		fmt.Println("secret keys written to", a.keysOut, "(distribute per trust level!)")
	}
	return nil
}

// loadMap builds the preset map.
func loadMap(preset string, seed []byte) (*rc.Graph, error) {
	switch preset {
	case "small":
		return rc.SmallMap(seed)
	case "atlanta":
		return rc.AtlantaNW(seed)
	case "grid":
		return rc.GridMap(16, 16, 120)
	case "figure1":
		g, _, err := rc.FigureOneMap()
		return g, err
	default:
		return nil, fmt.Errorf("unknown map preset %q", preset)
	}
}

// buildProfile assembles the privacy profile from the flags.
func buildProfile(levels int, kList, lList string, sigma float64) (rc.Profile, error) {
	if levels < 1 {
		return rc.Profile{}, fmt.Errorf("need at least one level")
	}
	ks, err := parseInts(kList)
	if err != nil {
		return rc.Profile{}, fmt.Errorf("parsing -k: %w", err)
	}
	ls, err := parseInts(lList)
	if err != nil {
		return rc.Profile{}, fmt.Errorf("parsing -l: %w", err)
	}
	prof := rc.Profile{Levels: make([]rc.Level, levels)}
	k := 10
	for i := range prof.Levels {
		if i < len(ks) {
			k = ks[i]
		}
		l := k / 3
		if l < 2 {
			l = 2
		}
		if i < len(ls) {
			l = ls[i]
		}
		s := 0.0
		if sigma > 0 {
			s = sigma * float64(i+1)
		}
		prof.Levels[i] = rc.Level{K: k, L: l, SigmaS: s}
		if i >= len(ks) {
			k *= 2
		}
	}
	if err := prof.Validate(); err != nil {
		return rc.Profile{}, fmt.Errorf("profile: %w", err)
	}
	return prof, nil
}

// parseInts parses "10,20,40".
func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// levelLayers renders every level by peeling with the owner's own keys.
func levelLayers(engine *rc.Engine, region *rc.CloakedRegion, ks *rc.KeySet, user rc.SegmentID) ([]rc.RenderLayer, error) {
	glyphs := []rune{'1', '2', '3', '4', '5', '6', '7', '8', '9'}
	layers := []rc.RenderLayer{{Segments: region.Segments, Glyph: glyphFor(glyphs, region.PrivacyLevel())}}
	for lv := region.PrivacyLevel() - 1; lv >= 1; lv-- {
		grant, err := ks.Grant(lv)
		if err != nil {
			return nil, err
		}
		out, err := engine.Deanonymize(region, grant, lv)
		if err != nil {
			return nil, fmt.Errorf("rendering level %d: %w", lv, err)
		}
		layers = append(layers, rc.RenderLayer{Segments: out.Segments, Glyph: glyphFor(glyphs, lv)})
	}
	layers = append(layers, rc.RenderLayer{Segments: []rc.SegmentID{user}, Glyph: '*'})
	return layers, nil
}

// glyphFor maps a level index to its display glyph.
func glyphFor(glyphs []rune, level int) rune {
	if level >= 1 && level <= len(glyphs) {
		return glyphs[level-1]
	}
	return '#'
}

// writeJSON writes v to path.
func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating %s: %w", path, err)
	}
	defer func() { _ = f.Close() }()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}
