package main

import (
	"flag"
	"fmt"
	"os"

	rc "github.com/reversecloak/reversecloak"
)

// This file holds the replication operator subcommands: promote (fail
// over to a follower) and status (replication role, watermark and lag).
// docs/OPERATIONS.md's failover runbook strings them together.

// runPromote promotes a follower to leader. With -addr it promotes a
// RUNNING follower over the wire (the usual failover path: the follower
// keeps serving, now accepting writes). With -data-dir it promotes a
// STOPPED follower's data directory offline — the recovery path when the
// follower process is down too.
//
// Promote only after the old leader is confirmed dead: the epoch bump
// fences a stale leader out when it tries to rejoin, it does not stop a
// live one from acknowledging writes that will then be lost.
func runPromote(argv []string) error {
	fs := flag.NewFlagSet("promote", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "", "promote the running follower at this address")
		dataDir = fs.String("data-dir", "", "promote this (stopped) follower data directory offline")
		tenant  = fs.String("tenant", "", "authenticate to the server as this tenant (operator capability)")
		token   = fs.String("token", "", "tenant token for -tenant")
		codec   = fs.String("codec", "auto", "wire codec for -addr: auto, json or binary")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if err := setWireCodec(*codec); err != nil {
		return err
	}
	if (*addr == "") == (*dataDir == "") {
		return fmt.Errorf("exactly one of -addr or -data-dir is required")
	}
	if *addr != "" {
		c, err := dialAuthed(*addr, *tenant, *token)
		if err != nil {
			return err
		}
		defer func() { _ = c.Close() }()
		epoch, err := c.Promote()
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "promote: %s is now the leader at epoch %d\n", *addr, epoch)
		return nil
	}
	st, err := rc.OpenDurableStore(*dataDir)
	if err != nil {
		return err
	}
	defer func() { _ = st.Close() }()
	epoch, leader, exists := st.EpochRecord()
	if leader && exists {
		fmt.Fprintf(os.Stderr, "promote: %s already claims leadership of epoch %d\n", *dataDir, epoch)
		return nil
	}
	if err := st.SetEpoch(epoch+1, true); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "promote: %s promoted to leader at epoch %d (watermark %s)\n",
		*dataDir, epoch+1, st.Watermark())
	return nil
}

// runStatus prints a node's replication status: role, epoch, per-shard
// stream watermark, and lag (follower backlog, or per-follower lag on a
// leader).
func runStatus(argv []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7080", "server address")
	tenant := fs.String("tenant", "", "authenticate to the server as this tenant (operator capability)")
	token := fs.String("token", "", "tenant token for -tenant")
	codec := fs.String("codec", "auto", "wire codec: auto, json or binary")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if err := setWireCodec(*codec); err != nil {
		return err
	}
	c, err := dialAuthed(*addr, *tenant, *token)
	if err != nil {
		return err
	}
	defer func() { _ = c.Close() }()
	status, err := c.ReplStatus()
	if err != nil {
		return err
	}
	fmt.Printf("role:      %s\n", status.Role)
	fmt.Printf("epoch:     %d\n", status.Epoch)
	fmt.Printf("watermark: %s\n", rc.Watermark(status.Watermark))
	if status.Role == "follower" {
		fmt.Printf("leader:    %s\n", status.LeaderAddr)
		if status.LagFrames != nil {
			fmt.Printf("lag:       %d frames\n", *status.LagFrames)
		}
	}
	for _, f := range status.Followers {
		fmt.Printf("follower:  %s behind=%d last_ack_ms=%d\n", f.Addr, f.Behind, f.LastAckMillis)
	}
	return nil
}
