package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	rc "github.com/reversecloak/reversecloak"
)

// runLoadgen sweeps concurrent-client counts against a running server and
// reports the achieved registration throughput per step. Registrations do
// not accumulate on the server: by default every registration the
// generator creates is deregistered again (so long runs against a durable
// store do not grow the WAL without bound), and with -ttl the
// registrations instead carry a TTL and are left for the server's expiry
// sweeper to reclaim — the TTL-churn workload of a production deployment.
func runLoadgen(argv []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:7080", "server address")
		sweep    = fs.String("clients", "1,4,16,64", "comma-separated concurrent client counts")
		duration = fs.Duration("duration", 3*time.Second, "measurement window per step")
		kAnon    = fs.Int("k", 8, "anonymity k of the single-level test profile")
		lDiv     = fs.Int("l", 4, "diversity l of the single-level test profile")
		batch    = fs.Int("batch", 0, "items per anonymize_batch request (0 = single ops)")
		segments = fs.Int("segments", 500, "spread users over segment IDs [0, segments)")
		ttl      = fs.Duration("ttl", 0,
			"register with this TTL and let the server expire the registrations (0 = deregister each one)")
		readAddr = fs.String("read-addr", "",
			"aim a get_region read at this address (e.g. a replication follower) after each registration; "+
				"unknown-region responses count as stale reads (replication lag)")
		reduceFrac = fs.Float64("reduce-frac", 0,
			"fraction of requests that reduce a pre-registered region instead of anonymizing (0..1)")
		skew = fs.Float64("skew", 0,
			"zipf exponent for choosing which region to reduce (> 1 skews toward a hot set; <= 1 = uniform)")
		poolSize = fs.Int("regions", 512,
			"pre-registered region pool the reduce workload draws from (with -reduce-frac)")
		levels = fs.Int("levels", 1,
			"privacy levels of the test profile (each level doubles k; > 1 makes reduces peel)")
		tenantName = fs.String("tenant", "", "authenticate every connection as this tenant")
		token      = fs.String("token", "", "tenant token for -tenant")
		codec      = fs.String("codec", "auto", "wire codec: auto, json or binary")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if err := setWireCodec(*codec); err != nil {
		return err
	}
	counts, err := parseInts(*sweep)
	if err != nil {
		return fmt.Errorf("parsing -clients: %w", err)
	}
	if len(counts) == 0 {
		return fmt.Errorf("empty -clients sweep")
	}
	if *reduceFrac < 0 || *reduceFrac > 1 {
		return fmt.Errorf("-reduce-frac %v outside [0, 1]", *reduceFrac)
	}
	if *levels < 1 {
		return fmt.Errorf("-levels must be >= 1")
	}
	prof := rc.Profile{}
	for lv, k := 0, *kAnon; lv < *levels; lv, k = lv+1, k*2 {
		prof.Levels = append(prof.Levels, rc.Level{K: k, L: *lDiv})
	}

	// Fail fast if the server is unreachable (or the credentials are bad).
	probe, err := dialAuthed(*addr, *tenantName, *token)
	if err != nil {
		return err
	}
	if err := probe.Ping(); err != nil {
		_ = probe.Close()
		return err
	}

	// With a reduce workload, pre-register the region pool the reduce
	// requests draw from and entitle the "reader" requester to level 0,
	// so every reduce peels the full level stack (the server's hot read
	// path, cache-friendly or not).
	var pool []string
	if *reduceFrac > 0 {
		for u := 0; len(pool) < *poolSize && u < *segments*4; u++ {
			id, _, err := probe.Anonymize(rc.SegmentID(u%*segments), prof, "RGE")
			if err != nil {
				if errors.Is(err, rc.ErrRemote) {
					continue // infeasible cloak at this segment; try the next
				}
				_ = probe.Close()
				return fmt.Errorf("registering reduce pool: %w", err)
			}
			if err := probe.SetTrust(id, "reader", 0); err != nil {
				_ = probe.Close()
				return fmt.Errorf("granting reduce pool trust: %w", err)
			}
			pool = append(pool, id)
		}
		if len(pool) == 0 {
			_ = probe.Close()
			return fmt.Errorf("reduce pool: no feasible cloaks on this map")
		}
		defer func() {
			cl, err := dialAuthed(*addr, *tenantName, *token)
			if err != nil {
				return
			}
			for _, id := range pool {
				_ = cl.Deregister(id)
			}
			_ = cl.Close()
		}()
	}
	_ = probe.Close()

	cleanup := "deregister"
	if *ttl > 0 {
		cleanup = fmt.Sprintf("ttl=%s", *ttl)
	}
	fmt.Printf("loadgen against %s: %v clients, %s per step, batch=%d, cleanup=%s\n",
		*addr, counts, *duration, *batch, cleanup)
	if len(pool) > 0 {
		fmt.Printf("reduce workload: frac=%.2f pool=%d levels=%d skew=%.2f\n",
			*reduceFrac, len(pool), *levels, *skew)
	}
	switch {
	case *readAddr != "":
		fmt.Printf("reads against %s (stale = registration not yet replicated)\n", *readAddr)
		fmt.Printf("%-10s %12s %12s %10s %12s %10s %10s\n",
			"clients", "req/s", "ok", "failed", "reads/s", "stale", "speedup")
	case len(pool) > 0:
		fmt.Printf("%-10s %12s %12s %10s %12s %10s\n",
			"clients", "req/s", "ok", "failed", "reduce/s", "speedup")
	default:
		fmt.Printf("%-10s %12s %12s %10s %10s\n", "clients", "req/s", "ok", "failed", "speedup")
	}
	var base float64
	var totalDenied, totalThrottled, totalReduces int64
	for _, n := range counts {
		res, err := runStep(*addr, *readAddr, *tenantName, *token, n, *duration, prof, *batch, *segments, *ttl,
			*reduceFrac, *skew, pool)
		if err != nil {
			return fmt.Errorf("step clients=%d: %w", n, err)
		}
		totalDenied += res.denied
		totalThrottled += res.throttled
		totalReduces += res.reduces
		rate := float64(res.done) / duration.Seconds()
		if base == 0 && rate > 0 {
			base = rate
		}
		speedup := 0.0
		if base > 0 {
			speedup = rate / base
		}
		ok := res.done - res.failed - res.denied - res.throttled
		switch {
		case *readAddr != "":
			fmt.Printf("%-10d %12.0f %12d %10d %12.0f %10d %9.2fx\n",
				n, rate, ok, res.failed,
				float64(res.reads)/duration.Seconds(), res.stale, speedup)
		case len(pool) > 0:
			fmt.Printf("%-10d %12.0f %12d %10d %12.0f %9.2fx\n",
				n, rate, ok, res.failed,
				float64(res.reduces)/duration.Seconds(), speedup)
		default:
			fmt.Printf("%-10d %12.0f %12d %10d %9.2fx\n",
				n, rate, ok, res.failed, speedup)
		}
	}
	// Trust-boundary rejections, on one grep-friendly line: capability
	// denials and rate-limit throttles are the expected outcome when the
	// workload exceeds the tenant's grants, not generic failures.
	fmt.Printf("rejected: denied=%d throttled=%d\n", totalDenied, totalThrottled)
	if len(pool) > 0 {
		// The hit-rate-relevant shape of the reduce leg, grep-friendly:
		// with skew > 1 most reduces land on a small hot set, so a server
		// cache (serve -reduce-cache-bytes) should turn most of these
		// into anonymizer_reduce_cache_hits_total on /metrics.
		fmt.Printf("reduces: total=%d pool=%d skew=%.2f frac=%.2f\n",
			totalReduces, len(pool), *skew, *reduceFrac)
	}
	return nil
}

// wireCodec is the codec selected by the running subcommand's -codec
// flag (auto when the subcommand has none); dialAuthed applies it to
// every connection it opens.
var wireCodec = rc.CodecAuto

// setWireCodec parses a -codec flag value into wireCodec.
func setWireCodec(s string) error {
	c, err := rc.ParseCodec(s)
	if err != nil {
		return err
	}
	wireCodec = c
	return nil
}

// dialAuthed dials the server (in the selected wire codec) and
// authenticates when credentials are set.
func dialAuthed(addr, tenant, token string) (*rc.Client, error) {
	c, err := rc.DialServer(addr, rc.WithCodec(wireCodec))
	if err != nil {
		return nil, err
	}
	if tenant != "" || token != "" {
		if err := c.Auth(tenant, token); err != nil {
			_ = c.Close()
			return nil, fmt.Errorf("auth as %q: %w", tenant, err)
		}
	}
	return c, nil
}

// stepResult aggregates one sweep step's counters.
type stepResult struct {
	done      int64 // completed requests
	failed    int64 // server-side failures among them
	reads     int64 // follower reads issued
	stale     int64 // follower reads that missed (not yet replicated)
	denied    int64 // capability rejections (tenant lacks the grant)
	throttled int64 // rate-limit rejections (tenant over budget)
	reduces   int64 // reduce requests issued against the region pool
}

// runStep drives n concurrent clients (one connection each) for the window
// and returns the step's counters. Cloak failures count as completed
// requests — the server did the work — while transport errors abort the
// step. With ttl == 0, every successful registration is deregistered
// before the next request, so the step leaves no state behind. With a
// readAddr, each worker also holds a connection there and reads back
// every registration it creates — aimed at a replication follower, the
// stale count exposes replication lag under this write load.
func runStep(
	addr, readAddr, tenant, token string,
	n int,
	window time.Duration,
	prof rc.Profile,
	batch, segments int,
	ttl time.Duration,
	reduceFrac, skew float64,
	pool []string,
) (*stepResult, error) {
	clients := make([]*rc.Client, n)
	for i := range clients {
		c, err := dialAuthed(addr, tenant, token)
		if err != nil {
			return nil, err
		}
		defer func() { _ = c.Close() }()
		clients[i] = c
	}
	readers := make([]*rc.Client, n)
	if readAddr != "" {
		for i := range readers {
			c, err := dialAuthed(readAddr, tenant, token)
			if err != nil {
				return nil, err
			}
			defer func() { _ = c.Close() }()
			readers[i] = c
		}
	}
	var (
		done      atomic.Int64
		failed    atomic.Int64
		reads     atomic.Int64
		stale     atomic.Int64
		denied    atomic.Int64
		throttled atomic.Int64
		reduces   atomic.Int64
		transport atomic.Pointer[error]
		wg        sync.WaitGroup
	)
	// reject classifies a server-side rejection into the right counter and
	// reports whether it swallowed the error; transport errors stay fatal.
	// Order matters: denied/throttled are ErrRemote too, so the generic
	// bucket is last.
	reject := func(err error) bool {
		switch {
		case errors.Is(err, rc.ErrDenied):
			denied.Add(1)
		case errors.Is(err, rc.ErrThrottled):
			throttled.Add(1)
		case errors.Is(err, rc.ErrRemote):
			failed.Add(1)
		default:
			return false
		}
		return true
	}
	// release deregisters one registration when the step owns cleanup;
	// with a TTL the server's sweeper reclaims it instead.
	release := func(c *rc.Client, id string) error {
		if ttl > 0 {
			return nil
		}
		if err := c.Deregister(id); err != nil {
			if reject(err) {
				return nil
			}
			return err
		}
		return nil
	}
	deadline := time.Now().Add(window)
	for w, c := range clients {
		wg.Add(1)
		go func(c, rd *rc.Client, w int) {
			defer wg.Done()
			// read checks one fresh registration on the read address; a
			// miss is replication lag, not an error. Read BEFORE release so
			// a deregister cannot race the read.
			read := func(id string) error {
				if rd == nil {
					return nil
				}
				reads.Add(1)
				if _, _, err := rd.GetRegion(id); err != nil {
					if errors.Is(err, rc.ErrRemote) {
						stale.Add(1)
						return nil
					}
					return err
				}
				return nil
			}
			// Per-worker region picker for the reduce workload: skew > 1
			// concentrates the choices zipfian-style on a hot subset of the
			// pool (the realistic shape of LBS read traffic — a few busy
			// regions absorb most queries); otherwise uniform.
			var (
				rng  *rand.Rand
				zipf *rand.Zipf
			)
			if len(pool) > 0 {
				rng = rand.New(rand.NewSource(int64(w)*6364136223846793005 + 1442695040888963407))
				if skew > 1 && len(pool) > 1 {
					zipf = rand.NewZipf(rng, skew, 1, uint64(len(pool)-1))
				}
			}
			pickRegion := func() string {
				if zipf != nil {
					return pool[zipf.Uint64()]
				}
				return pool[rng.Intn(len(pool))]
			}
			i := 0
			for time.Now().Before(deadline) {
				if len(pool) > 0 && rng.Float64() < reduceFrac {
					if _, _, err := c.Reduce(pickRegion(), "reader", 0); err != nil {
						if reject(err) {
							done.Add(1)
							continue
						}
						transport.Store(&err)
						return
					}
					reduces.Add(1)
					done.Add(1)
					continue
				}
				if batch > 0 {
					specs := make([]rc.AnonymizeSpec, batch)
					for j := range specs {
						specs[j] = rc.AnonymizeSpec{
							User:    rc.SegmentID((w*131 + i*17 + j) % segments),
							Profile: prof,
							TTL:     ttl,
						}
						i++
					}
					results, err := c.AnonymizeBatch(specs)
					if err != nil {
						if reject(err) {
							done.Add(int64(len(specs)))
							continue
						}
						transport.Store(&err)
						return
					}
					for _, r := range results {
						if r.Err != nil {
							failed.Add(1)
							continue
						}
						if err := read(r.RegionID); err != nil {
							transport.Store(&err)
							return
						}
						if err := release(c, r.RegionID); err != nil {
							transport.Store(&err)
							return
						}
					}
					done.Add(int64(len(results)))
					continue
				}
				user := rc.SegmentID((w*131 + i*17) % segments)
				i++
				id, _, err := c.AnonymizeTTL(user, prof, "RGE", ttl)
				if err != nil {
					if reject(err) {
						done.Add(1)
						continue
					}
					transport.Store(&err)
					return
				}
				if err := read(id); err != nil {
					transport.Store(&err)
					return
				}
				if err := release(c, id); err != nil {
					transport.Store(&err)
					return
				}
				done.Add(1)
			}
		}(c, readers[w], w)
	}
	wg.Wait()
	res := &stepResult{
		done: done.Load(), failed: failed.Load(),
		reads: reads.Load(), stale: stale.Load(),
		denied: denied.Load(), throttled: throttled.Load(),
		reduces: reduces.Load(),
	}
	if errp := transport.Load(); errp != nil {
		return res, *errp
	}
	return res, nil
}
