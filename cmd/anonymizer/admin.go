package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"syscall"
	"time"

	rc "github.com/reversecloak/reversecloak"
)

// This file holds the data-dir lifecycle subcommands: backup (hot from a
// live server, or offline from a stopped one's directory), restore,
// reshard and dump. docs/OPERATIONS.md is the runbook that strings them
// together into backup/restore/reshard/disaster-recovery procedures.

// runBackup writes a backup archive of a durable registration store to a
// file, stdout, or an HTTP(S) sink. With -addr it takes a hot backup from
// a live server over the wire protocol's backup op; with -data-dir it
// archives a stopped server's directory offline. With -since WATERMARK
// (the watermark printed by an earlier backup) the archive is
// incremental: only the mutation-stream records after that position,
// applied onto a restored directory with `restore -apply`.
func runBackup(argv []string) error {
	fs := flag.NewFlagSet("backup", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "", "take a hot backup from the server at this address")
		dataDir = fs.String("data-dir", "", "archive this (stopped) data directory offline")
		out     = fs.String("out", "-", `destination: a file path, "-" for stdout, or an http(s):// URL to POST to`)
		since   = fs.String("since", "", `ship only stream records after this watermark (e.g. "12,0,7"), as an incremental archive`)
		tenant  = fs.String("tenant", "", "authenticate to the server as this tenant (operator capability)")
		token   = fs.String("token", "", "tenant token for -tenant")
		codec   = fs.String("codec", "auto", "wire codec for -addr: auto, json or binary")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if err := setWireCodec(*codec); err != nil {
		return err
	}
	if (*addr == "") == (*dataDir == "") {
		return fmt.Errorf("exactly one of -addr (hot) or -data-dir (offline) is required")
	}
	var sinceWM rc.Watermark
	if *since != "" {
		var err error
		if sinceWM, err = rc.ParseWatermark(*since); err != nil {
			return err
		}
	}

	var buf bytes.Buffer
	var n int64
	var err error
	switch {
	case *addr != "" && sinceWM != nil:
		var c *rc.Client
		if c, err = dialAuthed(*addr, *tenant, *token); err != nil {
			return err
		}
		defer func() { _ = c.Close() }()
		n, err = c.BackupSince(&buf, sinceWM)
	case *addr != "":
		var c *rc.Client
		if c, err = dialAuthed(*addr, *tenant, *token); err != nil {
			return err
		}
		defer func() { _ = c.Close() }()
		n, err = c.Backup(&buf)
	case sinceWM != nil:
		n, _, err = rc.IncrementalBackupDir(&buf, *dataDir, sinceWM)
	default:
		n, err = rc.BackupDir(&buf, *dataDir)
	}
	if err != nil {
		return err
	}
	// The archive's watermark is the -since for the NEXT incremental
	// backup; surface it so operators can chain cheap frequent deltas.
	wm, err := rc.ArchiveWatermark(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return err
	}
	if err := shipArchive(*out, &buf); err != nil {
		return err
	}
	kind := "backup"
	if sinceWM != nil {
		kind = "incremental backup"
	}
	fmt.Fprintf(os.Stderr, "%s: %d bytes -> %s (watermark %s)\n", kind, n, *out, wm)
	return nil
}

// shipArchive delivers archive bytes to a file, stdout, or an HTTP sink.
func shipArchive(out string, archive *bytes.Buffer) error {
	if strings.HasPrefix(out, "http://") || strings.HasPrefix(out, "https://") {
		resp, err := http.Post(out, "application/octet-stream", archive)
		if err != nil {
			return fmt.Errorf("posting backup: %w", err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode < 200 || resp.StatusCode >= 300 {
			return fmt.Errorf("backup sink %s answered %s", out, resp.Status)
		}
		return nil
	}
	if out == "-" {
		_, err := io.Copy(os.Stdout, archive)
		return err
	}
	f, err := os.OpenFile(out, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return fmt.Errorf("creating %s: %w", out, err)
	}
	_, err = io.Copy(f, archive)
	// Devices like /dev/null reject fsync with EINVAL/ENOTSUP; a backup to
	// a real file must still surface sync failures.
	if serr := f.Sync(); err == nil && serr != nil &&
		!errors.Is(serr, syscall.EINVAL) && !errors.Is(serr, syscall.ENOTSUP) {
		err = serr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("writing %s: %w", out, err)
	}
	return nil
}

// masterKeyOpts loads an optional master key file into durability
// options: directories holding derived-key registrations cannot open
// without the keyring. An empty path yields no options.
func masterKeyOpts(path string) ([]rc.DurabilityOption, error) {
	if path == "" {
		return nil, nil
	}
	kr, err := rc.LoadMasterKeys(path)
	if err != nil {
		return nil, err
	}
	return []rc.DurabilityOption{rc.WithKeyring(kr)}, nil
}

// runRestore seeds a fresh data directory from a backup archive — or,
// with -apply, extends an existing directory with an incremental
// archive (every delta record lands through the same journal+apply
// pipeline a replication follower uses). The archive is verified
// completely; a truncated or corrupted full archive changes nothing on
// disk.
func runRestore(argv []string) error {
	fs := flag.NewFlagSet("restore", flag.ExitOnError)
	var (
		in      = fs.String("in", "-", `archive source: a file path or "-" for stdin`)
		dataDir = fs.String("data-dir", "", "data directory to create (or, with -apply, to extend)")
		apply   = fs.Bool("apply", false, "apply an incremental archive onto an existing data directory")
		keyFile = fs.String("master-key-file", "", "master key file for archives holding derived-key registrations")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *dataDir == "" {
		return fmt.Errorf("-data-dir is required")
	}
	durOpts, err := masterKeyOpts(*keyFile)
	if err != nil {
		return err
	}
	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		r = f
	}
	if *apply {
		stats, err := rc.ApplyIncremental(r, *dataDir, durOpts...)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "restore -apply: %d of %d delta records applied, %s now at watermark %s\n",
			stats.Applied, stats.Frames, *dataDir, stats.End)
		return nil
	}
	if err := rc.RestoreArchive(r, *dataDir); err != nil {
		return err
	}
	// Open once to report what the directory will recover to.
	st, err := rc.OpenDurableStore(*dataDir, durOpts...)
	if err != nil {
		return fmt.Errorf("restored directory does not open: %w", err)
	}
	defer func() { _ = st.Close() }()
	rec := st.Recovery()
	fmt.Fprintf(os.Stderr, "restore: %s holds %d registrations (%d trust updates, %d deregistrations, %d expired replayed)\n",
		*dataDir, st.Len(), rec.TrustUpdates, rec.Deregistrations, rec.Expired)
	return nil
}

// runReshard migrates a data directory to a new shard count, offline.
func runReshard(argv []string) error {
	fs := flag.NewFlagSet("reshard", flag.ExitOnError)
	var (
		src     = fs.String("src", "", "source data directory (server must be stopped)")
		dst     = fs.String("dst", "", "destination data directory (must not exist or be empty)")
		shards  = fs.Int("shards", 0, "target shard count (rounded up to a power of two)")
		keyFile = fs.String("master-key-file", "", "master key file for directories holding derived-key registrations")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *src == "" || *dst == "" || *shards < 1 {
		return fmt.Errorf("-src, -dst and -shards are required")
	}
	durOpts, err := masterKeyOpts(*keyFile)
	if err != nil {
		return err
	}
	stats, err := rc.Reshard(*src, *dst, *shards, durOpts...)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "reshard: %s (%d shards) -> %s (%d shards): %d records, %d live registrations, %d trust updates, %d deregistrations, %d expired dropped\n",
		*src, stats.SourceShards, *dst, stats.TargetShards,
		stats.Records, stats.Registrations, stats.TrustUpdates, stats.Deregistrations, stats.Expired)
	if stats.TruncatedBytes > 0 {
		fmt.Fprintf(os.Stderr, "reshard: skipped %d torn source WAL tail bytes\n", stats.TruncatedBytes)
	}
	return nil
}

// dumpEntry is one registration's externally visible state, with the
// region and every reduction digested so two dumps diff cleanly.
type dumpEntry struct {
	ID        string         `json:"id"`
	Levels    int            `json:"levels"`
	Default   int            `json:"default"`
	Grants    map[string]int `json:"grants,omitempty"`
	Expires   string         `json:"expires_at,omitempty"`
	Region    string         `json:"region_sha256"`
	Reduced   []string       `json:"reductions_sha256"`
	ReduceErr string         `json:"reduce_error,omitempty"`
}

// runDump prints one deterministic JSON line per live registration of a
// (stopped or restored) data directory, sorted by ID: the region digest,
// the digest of every reduction level computed with the registration's
// own keys, the trust table and the expiry. Two directories hold the same
// visible state exactly when their dumps are byte-identical — the
// verification step of the backup/restore/reshard runbook. The map flags
// must match the ones the server ran with, or reductions cannot be
// recomputed.
func runDump(argv []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	var (
		dataDir = fs.String("data-dir", "", "data directory to dump")
		preset  = fs.String("map", "small", "map preset the server ran with")
		seedStr = fs.String("seed", "reversecloak-default-map-seed-01", "map+workload seed the server ran with")
		cars    = fs.Int("cars", 2000, "workload size the server ran with")
		rpleT   = fs.Int("rple-list", 16, "RPLE transition list length T the server ran with")
		keyFile = fs.String("master-key-file", "", "master key file for directories holding derived-key registrations")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *dataDir == "" {
		return fmt.Errorf("-data-dir is required")
	}
	g, err := loadMap(*preset, []byte(*seedStr))
	if err != nil {
		return err
	}
	sim, err := rc.NewSimulation(g, rc.WorkloadConfig{Cars: *cars, Seed: []byte(*seedStr)})
	if err != nil {
		return fmt.Errorf("generating workload: %w", err)
	}
	engines := map[rc.Algorithm]*rc.Engine{}
	if engines[rc.RGE], err = rc.NewRGEEngine(g, sim.UsersOn); err != nil {
		return err
	}
	if engines[rc.RPLE], err = rc.NewRPLEEngine(g, sim.UsersOn, *rpleT); err != nil {
		return err
	}

	durOpts, err := masterKeyOpts(*keyFile)
	if err != nil {
		return err
	}
	st, err := rc.OpenDurableStore(*dataDir, durOpts...)
	if err != nil {
		return err
	}
	defer func() { _ = st.Close() }()

	var entries []dumpEntry
	var rangeErr error
	st.Range(func(id string, reg *rc.Registration) bool {
		e := dumpEntry{
			ID:      id,
			Levels:  reg.Levels(),
			Default: reg.DefaultLevel(),
			Grants:  reg.Grants(),
			Region:  digestJSON(reg.Region()),
		}
		if !reg.Expiry().IsZero() {
			e.Expires = reg.Expiry().UTC().Format(time.RFC3339Nano)
		}
		engine, ok := engines[reg.Region().Algorithm]
		if !ok {
			rangeErr = fmt.Errorf("region %s uses an unknown algorithm", id)
			return false
		}
		for lv := 0; lv <= reg.Levels(); lv++ {
			reduced, err := reg.Reduce(engine, lv)
			if err != nil {
				e.ReduceErr = fmt.Sprintf("level %d: %v", lv, err)
				break
			}
			e.Reduced = append(e.Reduced, digestJSON(reduced))
		}
		entries = append(entries, e)
		return true
	})
	if rangeErr != nil {
		return rangeErr
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	enc := json.NewEncoder(os.Stdout)
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "dump: %d registrations\n", len(entries))
	return nil
}

// digestJSON returns the SHA-256 of v's canonical JSON encoding.
func digestJSON(v any) string {
	raw, err := json.Marshal(v)
	if err != nil {
		return "marshal-error:" + err.Error()
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}
