package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	rc "github.com/reversecloak/reversecloak"
)

// runServe starts the trusted anonymization server over a preset map and
// blocks until SIGINT/SIGTERM. With -data-dir the registration store is
// durable: every registration, trust update and deregistration is
// journaled to per-shard write-ahead logs and recovered on restart. With
// -replicate-from the server runs as a replication follower of another
// anonymizer: it bootstraps from a hot backup if its data dir is fresh,
// tails the leader's mutation stream, serves reads locally, redirects
// writes to the leader, and can be promoted with `anonymizer promote`.
func runServe(argv []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:7080", "listen address")
		preset  = fs.String("map", "small", "map preset: small, atlanta, grid, figure1")
		seedStr = fs.String("seed", "reversecloak-default-map-seed-01", "map+workload seed")
		cars    = fs.Int("cars", 2000, "workload size (live user densities)")
		rpleT   = fs.Int("rple-list", 16, "RPLE transition list length T")
		shards  = fs.Int("shards", 0, "registration store shards (0 = default)")
		workers = fs.Int("workers", 0, "per-connection worker pool size (0 = default)")

		reduceCacheBytes = fs.Int64("reduce-cache-bytes", 0,
			"read-path cache budget in bytes: memoized reductions + derived key sets (0 disables, -1 = unbounded)")

		replicateFrom = fs.String("replicate-from", "",
			"run as a replication follower of the leader at this address (requires -data-dir)")
		advertise = fs.String("advertise", "",
			"address clients and the leader should reach this node at (default: -addr)")

		tenantsFile = fs.String("tenants", "",
			"tenants file (JSON): enables authentication, capabilities and per-tenant rate limits")
		tenantsReload = fs.Duration("tenants-reload", 2*time.Second,
			"poll the tenants file for edits on this period (0 disables hot reload)")
		adminAddr = fs.String("admin-addr", "",
			"admin HTTP listener (/metrics, /healthz, /readyz, /debug/pprof); empty disables it")
		readyMaxLag = fs.Int64("ready-max-lag", rc.DefaultReadyMaxLag,
			"/readyz reports unready while a follower trails the leader by more than this many stream records")

		replTenant = fs.String("repl-tenant", "",
			"tenant name this follower authenticates to the leader as (with -repl-token)")
		replToken = fs.String("repl-token", "",
			"tenant token for -repl-tenant; needed when the leader runs with -tenants")
		replCodec = fs.String("codec", "auto",
			"wire codec for the replication connections to the leader: auto, json or binary")

		ttl = fs.Duration("ttl", rc.DefaultRegistrationTTL,
			"registration lifetime before the expiry sweeper reclaims it (0 = live until deregistered)")
		gcInterval = fs.Duration("gc-interval", rc.DefaultGCInterval,
			"expiry sweep period (0 disables the sweeper)")

		masterKeyFile = fs.String("master-key-file", "",
			"master key file (JSON): derive per-registration cloak keys from its active epoch instead of storing them")
		masterKeyReload = fs.Duration("master-key-reload", 2*time.Second,
			"poll the master key file for epoch rotations on this period (0 disables hot reload)")

		dataDir = fs.String("data-dir", "",
			"durable store directory; empty serves from memory only")
		fsyncStr = fs.String("fsync", "interval",
			"WAL fsync policy: always, interval or never")
		fsyncEvery = fs.Duration("fsync-every", 100*time.Millisecond,
			"background sync period for -fsync interval")
		snapEvery = fs.Int("snapshot-every", 4096,
			"compact a shard's WAL into a snapshot after this many records (0 = off)")
		snapInterval = fs.Duration("snapshot-interval", 0,
			"additionally compact dirty shards on this period (0 = off)")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	g, err := loadMap(*preset, []byte(*seedStr))
	if err != nil {
		return err
	}
	sim, err := rc.NewSimulation(g, rc.WorkloadConfig{Cars: *cars, Seed: []byte(*seedStr)})
	if err != nil {
		return fmt.Errorf("generating workload: %w", err)
	}
	rge, err := rc.NewRGEEngine(g, sim.UsersOn)
	if err != nil {
		return fmt.Errorf("building RGE engine: %w", err)
	}
	rple, err := rc.NewRPLEEngine(g, sim.UsersOn, *rpleT)
	if err != nil {
		return fmt.Errorf("building RPLE engine: %w", err)
	}

	var opts []rc.ServerOption
	if *workers > 0 {
		opts = append(opts, rc.WithConnWorkers(*workers))
	}
	if *reduceCacheBytes != 0 {
		opts = append(opts, rc.WithReduceCacheBytes(*reduceCacheBytes))
		if *reduceCacheBytes > 0 {
			fmt.Printf("reduce cache: %d byte budget\n", *reduceCacheBytes)
		} else {
			fmt.Printf("reduce cache: unbounded\n")
		}
	}
	if *tenantsFile != "" {
		reg, err := rc.LoadTenants(*tenantsFile)
		if err != nil {
			return err
		}
		defer func() { _ = reg.Close() }()
		if *tenantsReload > 0 {
			reg.Watch(*tenantsReload, func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			})
		}
		fmt.Printf("tenants: %d loaded from %s (reload every %s)\n",
			reg.Len(), *tenantsFile, *tenantsReload)
		opts = append(opts, rc.WithTenants(reg))
	}
	var keyring *rc.Keyring
	if *masterKeyFile != "" {
		keyring, err = rc.LoadMasterKeys(*masterKeyFile)
		if err != nil {
			return err
		}
		defer func() { _ = keyring.Close() }()
		if *masterKeyReload > 0 {
			keyring.Watch(*masterKeyReload, func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			})
		}
		fmt.Printf("master keys: %s (active epoch %d, %d epochs, reload every %s)\n",
			*masterKeyFile, keyring.ActiveEpoch(), len(keyring.Epochs()), *masterKeyReload)
		opts = append(opts, rc.WithMasterKeyring(keyring))
	}
	if *advertise == "" {
		*advertise = *addr
	}
	switch {
	case *replicateFrom != "":
		if *dataDir == "" {
			return fmt.Errorf("-replicate-from requires -data-dir")
		}
		policy, err := rc.ParseFsyncPolicy(*fsyncStr)
		if err != nil {
			return err
		}
		durOpts := []rc.DurabilityOption{
			rc.WithFsyncPolicy(policy),
			rc.WithFsyncEvery(*fsyncEvery),
			rc.WithSnapshotEvery(*snapEvery),
			rc.WithTTL(*ttl),
			rc.WithGCInterval(*gcInterval),
		}
		if *snapInterval > 0 {
			durOpts = append(durOpts, rc.WithSnapshotInterval(*snapInterval))
		}
		if keyring != nil {
			durOpts = append(durOpts, rc.WithKeyring(keyring))
		}
		upstreamCodec, err := rc.ParseCodec(*replCodec)
		if err != nil {
			return err
		}
		f, err := rc.StartFollower(rc.FollowerConfig{
			LeaderAddr:   *replicateFrom,
			DataDir:      *dataDir,
			Advertise:    *advertise,
			Tenant:       *replTenant,
			Token:        *replToken,
			Codec:        upstreamCodec,
			StoreOptions: durOpts,
			Logf: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		opts = append(opts, rc.WithStore(f.Store()), rc.WithReplicator(f))
	case *dataDir != "":
		policy, err := rc.ParseFsyncPolicy(*fsyncStr)
		if err != nil {
			return err
		}
		durOpts := []rc.DurabilityOption{
			rc.WithFsyncPolicy(policy),
			rc.WithFsyncEvery(*fsyncEvery),
			rc.WithSnapshotEvery(*snapEvery),
			rc.WithTTL(*ttl),
			rc.WithGCInterval(*gcInterval),
		}
		if *snapInterval > 0 {
			durOpts = append(durOpts, rc.WithSnapshotInterval(*snapInterval))
		}
		if *shards > 0 {
			durOpts = append(durOpts, rc.WithDurableShards(*shards))
		}
		if keyring != nil {
			durOpts = append(durOpts, rc.WithKeyring(keyring))
		}
		// Open the store ourselves (rather than via WithDurability) so we
		// can report what recovery found before serving traffic.
		st, err := rc.OpenDurableStore(*dataDir, durOpts...)
		if err != nil {
			return err
		}
		defer func() { _ = st.Close() }()
		if epoch, leader, exists := st.EpochRecord(); exists && !leader {
			// A follower data dir started without -replicate-from would
			// silently accept writes on a stale epoch — exactly the fork
			// the epoch record exists to prevent.
			return fmt.Errorf("data dir %s is a replication follower at epoch %d; "+
				"start it with -replicate-from, or promote it first (anonymizer promote)",
				*dataDir, epoch)
		}
		rec := st.Recovery()
		fmt.Printf("durable store %s (fsync=%s): recovered %d registrations, "+
			"%d trust updates, %d deregistrations, %d renewals, %d expired",
			*dataDir, policy, rec.Registrations, rec.TrustUpdates,
			rec.Deregistrations, rec.Renewals, rec.Expired)
		if rec.TruncatedBytes > 0 {
			fmt.Printf(" (dropped %d torn tail bytes)", rec.TruncatedBytes)
		}
		fmt.Println()
		opts = append(opts, rc.WithStore(st))
	default:
		// Construct the in-memory store ourselves so the lifecycle flags
		// apply to it; the server does not close caller-installed stores,
		// so arrange that here.
		st := rc.NewShardedStore(*shards,
			rc.WithStoreTTL(*ttl), rc.WithStoreGCInterval(*gcInterval))
		defer func() { _ = st.Close() }()
		opts = append(opts, rc.WithStore(st))
	}
	if *ttl > 0 {
		fmt.Printf("registration ttl %s (sweep every %s)\n", *ttl, *gcInterval)
	}

	srv, err := rc.NewServer(map[rc.Algorithm]*rc.Engine{
		rc.RGE:  rge,
		rc.RPLE: rple,
	}, opts...)
	if err != nil {
		return err
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	if *adminAddr != "" {
		ln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			return fmt.Errorf("admin listener: %w", err)
		}
		admin := &http.Server{
			Handler: srv.AdminHandler(rc.AdminConfig{ReadyMaxLag: *readyMaxLag}),
		}
		go func() { _ = admin.Serve(ln) }()
		defer func() { _ = admin.Close() }()
		fmt.Printf("admin http on %s (/metrics /healthz /readyz /debug/pprof)\n", ln.Addr())
	}
	role := ""
	if *replicateFrom != "" {
		role = fmt.Sprintf(" [follower of %s]", *replicateFrom)
	}
	fmt.Printf("anonymizer server on %s%s (map %s: %d junctions, %d segments, %d cars)\n",
		bound, role, *preset, g.NumJunctions(), g.NumSegments(), *cars)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return srv.Close()
}
