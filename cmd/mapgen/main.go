// Command mapgen generates synthetic road networks and writes them as JSON
// for the other tools. The "atlanta" preset matches the scale of the
// paper's USGS Atlanta-NW evaluation map (6,979 junctions, 9,187 segments).
package main

import (
	"flag"
	"fmt"
	"os"

	rc "github.com/reversecloak/reversecloak"
)

func main() {
	preset := flag.String("preset", "small", "map preset: atlanta, small, grid, figure1")
	junctions := flag.Int("junctions", 0, "custom junction count (overrides preset)")
	segments := flag.Int("segments", 0, "custom segment count (with -junctions)")
	cols := flag.Int("cols", 12, "grid preset: columns")
	rows := flag.Int("rows", 12, "grid preset: rows")
	spacing := flag.Float64("spacing", 150, "junction spacing in meters")
	seedStr := flag.String("seed", "reversecloak-default-map-seed-01", "generation seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	if err := run(*preset, *junctions, *segments, *cols, *rows, *spacing, *seedStr, *out); err != nil {
		fmt.Fprintln(os.Stderr, "mapgen:", err)
		os.Exit(1)
	}
}

func run(preset string, junctions, segments, cols, rows int, spacing float64, seedStr, out string) error {
	seed := []byte(seedStr)
	var (
		g   *rc.Graph
		err error
	)
	switch {
	case junctions > 0:
		g, err = rc.GenerateMap(rc.MapConfig{
			Junctions: junctions, Segments: segments, Spacing: spacing, Seed: seed,
		})
	case preset == "atlanta":
		g, err = rc.AtlantaNW(seed)
	case preset == "small":
		g, err = rc.SmallMap(seed)
	case preset == "grid":
		g, err = rc.GridMap(cols, rows, spacing)
	case preset == "figure1":
		g, _, err = rc.FigureOneMap()
	default:
		return fmt.Errorf("unknown preset %q", preset)
	}
	if err != nil {
		return fmt.Errorf("generating: %w", err)
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return fmt.Errorf("creating %s: %w", out, err)
		}
		defer func() { _ = f.Close() }()
		w = f
	}
	if err := g.WriteJSON(w); err != nil {
		return fmt.Errorf("writing: %w", err)
	}
	fmt.Fprintf(os.Stderr, "mapgen: %d junctions, %d segments\n",
		g.NumJunctions(), g.NumSegments())
	return nil
}
