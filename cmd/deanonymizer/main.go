// Command deanonymizer is the CLI counterpart of the toolkit's
// 'De-anonymizer' GUI: a location data requester loads a published region
// (as uploaded to the LBS provider), supplies whatever access keys she was
// granted, peels the cloak down to her entitled privacy level and views the
// reduced region over the road network.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	rc "github.com/reversecloak/reversecloak"
)

// regionFile mirrors cmd/anonymizer's published artifact.
type regionFile struct {
	Region     *rc.CloakedRegion `json:"region"`
	MapSeed    string            `json:"map_seed"`
	MapPreset  string            `json:"map_preset"`
	Algorithm  string            `json:"algorithm"`
	ListLength int               `json:"list_length,omitempty"`
}

// keysFile mirrors cmd/anonymizer's secret artifact.
type keysFile struct {
	Keys []string `json:"keys_hex"`
}

func main() {
	var (
		regionIn = flag.String("region", "", "published region JSON (required)")
		keysIn   = flag.String("keys", "", "hex keys JSON; omit to view the public region only")
		toLevel  = flag.Int("level", 0, "privacy level to reduce to")
		render   = flag.Bool("render", true, "render the reduced region as ASCII")
		width    = flag.Int("width", 78, "render width")
		height   = flag.Int("height", 30, "render height")
	)
	flag.Parse()
	if err := run(*regionIn, *keysIn, *toLevel, *render, *width, *height); err != nil {
		fmt.Fprintln(os.Stderr, "deanonymizer:", err)
		os.Exit(1)
	}
}

func run(regionIn, keysIn string, toLevel int, render bool, width, height int) error {
	if regionIn == "" {
		return fmt.Errorf("-region is required")
	}
	raw, err := os.ReadFile(regionIn)
	if err != nil {
		return fmt.Errorf("reading region: %w", err)
	}
	var rf regionFile
	if err := json.Unmarshal(raw, &rf); err != nil {
		return fmt.Errorf("parsing region: %w", err)
	}
	if rf.Region == nil {
		return fmt.Errorf("region file has no region")
	}

	g, err := loadMap(rf.MapPreset, []byte(rf.MapSeed))
	if err != nil {
		return err
	}

	// The de-anonymizer needs no density information: a dean-only engine.
	var engine *rc.Engine
	switch strings.ToUpper(rf.Algorithm) {
	case "RGE", "":
		engine, err = rc.NewRGEEngine(g, nil)
	case "RPLE":
		engine, err = rc.NewRPLEEngine(g, nil, rf.ListLength)
	default:
		return fmt.Errorf("unknown algorithm %q", rf.Algorithm)
	}
	if err != nil {
		return fmt.Errorf("building engine: %w", err)
	}

	fmt.Printf("published region: %d segments at level L%d (%s)\n",
		len(rf.Region.Segments), rf.Region.PrivacyLevel(), rf.Algorithm)

	reduced := rf.Region
	if keysIn != "" {
		kraw, err := os.ReadFile(keysIn)
		if err != nil {
			return fmt.Errorf("reading keys: %w", err)
		}
		var kf keysFile
		if err := json.Unmarshal(kraw, &kf); err != nil {
			return fmt.Errorf("parsing keys: %w", err)
		}
		ks, err := rc.KeysFromHex(kf.Keys)
		if err != nil {
			return fmt.Errorf("decoding keys: %w", err)
		}
		grant, err := ks.Grant(toLevel)
		if err != nil {
			return fmt.Errorf("building grant: %w", err)
		}
		reduced, err = engine.Deanonymize(rf.Region, grant, toLevel)
		if err != nil {
			return fmt.Errorf("de-anonymizing: %w", err)
		}
		fmt.Printf("reduced to level L%d: %d segments\n", toLevel, len(reduced.Segments))
		if len(reduced.Segments) == 1 {
			seg, err := g.Segment(reduced.Segments[0])
			if err == nil {
				fmt.Printf("exact location: segment %d %s\n", seg.ID, seg.Name)
			}
		}
	} else {
		fmt.Println("no keys supplied: showing the public region only")
	}

	if render {
		layers := []rc.RenderLayer{
			{Segments: rf.Region.Segments, Glyph: 'o'},
			{Segments: reduced.Segments, Glyph: '#'},
		}
		art, err := rc.RenderASCII(g, width, height, layers...)
		if err != nil {
			return fmt.Errorf("rendering: %w", err)
		}
		fmt.Println("\nmap ('.'=road, 'o'=published cloak, '#'=your reduced view):")
		fmt.Println(art)
	}
	return nil
}

// loadMap mirrors cmd/anonymizer's presets.
func loadMap(preset string, seed []byte) (*rc.Graph, error) {
	switch preset {
	case "small", "":
		return rc.SmallMap(seed)
	case "atlanta":
		return rc.AtlantaNW(seed)
	case "grid":
		return rc.GridMap(16, 16, 120)
	case "figure1":
		g, _, err := rc.FigureOneMap()
		return g, err
	default:
		return nil, fmt.Errorf("unknown map preset %q", preset)
	}
}
