// Command rcdemo replays the paper's Fig. 1 walkthrough on the 24-segment
// demonstration graph: it cloaks the user's segment s18 through three
// privacy levels, renders each region over the road network, then peels
// the levels off one key at a time.
package main

import (
	"flag"
	"fmt"
	"os"

	rc "github.com/reversecloak/reversecloak"
)

func main() {
	algorithm := flag.String("algorithm", "RGE", "cloaking algorithm: RGE or RPLE")
	width := flag.Int("width", 72, "ASCII map width")
	height := flag.Int("height", 26, "ASCII map height")
	flag.Parse()
	if err := run(*algorithm, *width, *height); err != nil {
		fmt.Fprintln(os.Stderr, "rcdemo:", err)
		os.Exit(1)
	}
}

func run(algorithm string, width, height int) error {
	g, s18, err := rc.FigureOneMap()
	if err != nil {
		return fmt.Errorf("building figure graph: %w", err)
	}

	var engine *rc.Engine
	density := func(rc.SegmentID) int { return 1 }
	switch algorithm {
	case "RGE", "rge":
		engine, err = rc.NewRGEEngine(g, density)
	case "RPLE", "rple":
		engine, err = rc.NewRPLEEngine(g, density, 8)
	default:
		return fmt.Errorf("unknown algorithm %q", algorithm)
	}
	if err != nil {
		return fmt.Errorf("building engine: %w", err)
	}

	// Fig. 1's level structure: +2, +3, +3 segments over L0 = {s18}.
	prof := rc.Profile{Levels: []rc.Level{
		{K: 3, L: 3},
		{K: 6, L: 6},
		{K: 9, L: 9},
	}}
	ks, err := rc.AutoGenerateKeys(3)
	if err != nil {
		return fmt.Errorf("generating keys: %w", err)
	}

	region, trace, err := engine.Anonymize(rc.Request{
		UserSegment: s18, Profile: prof, Keys: ks.All(),
	})
	if err != nil {
		return fmt.Errorf("anonymizing: %w", err)
	}

	name := func(id rc.SegmentID) string {
		seg, err := g.Segment(id)
		if err != nil {
			return "?"
		}
		return seg.Name
	}
	names := func(ids []rc.SegmentID) []string {
		out := make([]string, len(ids))
		for i, id := range ids {
			out[i] = name(id)
		}
		return out
	}

	fmt.Printf("ReverseCloak Fig. 1 walkthrough (%s)\n\n", algorithm)
	fmt.Printf("L0: user's segment            %v\n", name(s18))
	for li, seq := range trace.LevelSeqs {
		fmt.Printf("L%d: Key%d adds %d segments     %v\n", li+1, li+1, len(seq), names(seq))
	}

	layers := []rc.RenderLayer{
		{Segments: region.Segments, Glyph: '3'},
	}
	l2Keys, err := ks.Grant(2)
	if err != nil {
		return err
	}
	l2, err := engine.Deanonymize(region, l2Keys, 2)
	if err != nil {
		return fmt.Errorf("reducing to L2: %w", err)
	}
	l1Keys, err := ks.Grant(1)
	if err != nil {
		return err
	}
	l1, err := engine.Deanonymize(region, l1Keys, 1)
	if err != nil {
		return fmt.Errorf("reducing to L1: %w", err)
	}
	layers = append(layers,
		rc.RenderLayer{Segments: l2.Segments, Glyph: '2'},
		rc.RenderLayer{Segments: l1.Segments, Glyph: '1'},
		rc.RenderLayer{Segments: []rc.SegmentID{s18}, Glyph: '*'},
	)

	art, err := rc.RenderASCII(g, width, height, layers...)
	if err != nil {
		return fmt.Errorf("rendering: %w", err)
	}
	fmt.Println("\nmap ('.'=road, '3'/'2'/'1'=cloak levels, '*'=actual user):")
	fmt.Println(art)

	fmt.Println("de-anonymization:")
	fmt.Printf("  with Key3:            L3 (%d segs) -> L2 (%d segs)\n",
		len(region.Segments), len(l2.Segments))
	fmt.Printf("  with Key3+Key2:       L3 (%d segs) -> L1 (%d segs)\n",
		len(region.Segments), len(l1.Segments))
	l0Keys, err := ks.Grant(0)
	if err != nil {
		return err
	}
	l0, err := engine.Deanonymize(region, l0Keys, 0)
	if err != nil {
		return fmt.Errorf("reducing to L0: %w", err)
	}
	fmt.Printf("  with all keys:        L3 (%d segs) -> L0 = %s (the actual user)\n",
		len(region.Segments), name(l0.Segments[0]))
	return nil
}
