module github.com/reversecloak/reversecloak

go 1.21
